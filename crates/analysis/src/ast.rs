//! A pragmatic recursive-descent parser over the token stream: enough
//! item/statement/expression structure for the dataflow tier.
//!
//! This is *not* a full Rust parser — it is the subset the tier-2 rule
//! passes need to be reliable on this workspace:
//!
//! * every `fn` body becomes a statement tree with real `if`/`while`/
//!   `loop`/`for`/`match` structure (the CFG builder consumes these);
//! * expressions keep paths, field projections, method calls, calls,
//!   casts, binary/assignment operators, struct literals, and closures —
//!   everything unit inference and taint propagation walk;
//! * `struct` items contribute field declarations (`name: Type`) to the
//!   per-file unit vocabulary;
//! * macro invocations are opaque leaves: nothing inside a macro's
//!   argument tokens is parsed or analyzed.
//!
//! The parser never fails: any construct it does not understand becomes
//! an [`ExprKind::Opaque`] leaf (or is skipped), which keeps the
//! analyzer usable on work-in-progress source. Unknownness is always
//! conservative in the rule passes — an `Opaque` expression has no unit
//! domain and carries no taint.

use crate::lexer::{Token, TokenKind};

/// Index of an expression in [`Arena::exprs`].
pub type ExprId = usize;
/// Index of a statement in [`Arena::stmts`].
pub type StmtId = usize;

/// Flat storage for the statement/expression trees of one file.
#[derive(Debug, Default)]
pub struct Arena {
    /// All expressions, referenced by [`ExprId`].
    pub exprs: Vec<Expr>,
    /// All statements, referenced by [`StmtId`].
    pub stmts: Vec<Stmt>,
}

impl Arena {
    /// The expression behind `id` (ids handed out by this arena are
    /// always in range; a stale id yields a positionless `Opaque`).
    pub fn expr(&self, id: ExprId) -> &Expr {
        static OPAQUE: Expr = Expr {
            kind: ExprKind::Opaque,
            line: 0,
            col: 0,
        };
        self.exprs.get(id).unwrap_or(&OPAQUE)
    }

    /// The statement behind `id`.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        static EMPTY: Stmt = Stmt::Empty;
        self.stmts.get(id).unwrap_or(&EMPTY)
    }

    fn push_expr(&mut self, kind: ExprKind, line: u32, col: u32) -> ExprId {
        self.exprs.push(Expr { kind, line, col });
        self.exprs.len() - 1
    }

    fn push_stmt(&mut self, s: Stmt) -> StmtId {
        self.stmts.push(s);
        self.stmts.len() - 1
    }
}

/// Parsed view of one source file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// Every function with a body, in source order (nested fns included).
    pub fns: Vec<FnDef>,
    /// Struct field declarations seen anywhere in the file.
    pub fields: Vec<FieldDecl>,
    /// Statement/expression storage shared by all functions.
    pub arena: Arena,
}

/// One `name: Type` field of a `struct` item.
#[derive(Debug)]
pub struct FieldDecl {
    /// The struct the field belongs to.
    pub strukt: String,
    /// Field name.
    pub name: String,
    /// The declared type, as space-joined tokens (`Option < u64 >`).
    pub ty: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// 1-based column of the field name.
    pub col: u32,
}

/// One function definition with a body.
#[derive(Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Parameters as `(name, type-string)`; `self` receivers included.
    pub params: Vec<Param>,
    /// Return type as space-joined tokens; empty for `()`.
    pub ret_ty: String,
    /// The body.
    pub body: Block,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
}

/// One parameter of a function.
#[derive(Debug)]
pub struct Param {
    /// Binding name (patterns collapse to their single binding, or `_`).
    pub name: String,
    /// Declared type, space-joined.
    pub ty: String,
}

/// A `{ … }` statement sequence.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<StmtId>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let [mut] name[: Ty] = init;` — complex patterns record every
    /// bound name (`names`), a single-binding pattern exactly one.
    Let {
        /// Names bound by the pattern.
        names: Vec<String>,
        /// Declared type if written, space-joined.
        ty: Option<String>,
        /// Initializer.
        init: Option<ExprId>,
        /// 1-based line of `let`.
        line: u32,
        /// 1-based column of `let`.
        col: u32,
    },
    /// An expression statement (with or without `;`).
    Expr(ExprId),
    /// `if cond { … } [else { … }]` — `else if` chains nest in `els`.
    If {
        /// The condition.
        cond: ExprId,
        /// The then-branch.
        then_blk: Block,
        /// The else-branch, if any.
        els: Option<Block>,
    },
    /// `while cond { … }` (`while let` keeps only the scrutinee).
    While {
        /// Loop condition.
        cond: ExprId,
        /// Loop body.
        body: Block,
        /// 1-based line of the `while` keyword.
        line: u32,
        /// 1-based column of the `while` keyword.
        col: u32,
    },
    /// `loop { … }`.
    Loop {
        /// Loop body.
        body: Block,
        /// 1-based line of the `loop` keyword.
        line: u32,
        /// 1-based column of the `loop` keyword.
        col: u32,
    },
    /// `for pat in iter { … }`.
    For {
        /// Names bound by the loop pattern.
        names: Vec<String>,
        /// The iterated expression.
        iter: ExprId,
        /// Loop body.
        body: Block,
        /// 1-based line of the `for` keyword.
        line: u32,
        /// 1-based column of the `for` keyword.
        col: u32,
    },
    /// `match scrutinee { arms }`; `if let` desugars here too.
    Match {
        /// The matched expression.
        scrutinee: ExprId,
        /// Arms as `(pattern binding names, body)`.
        arms: Vec<(Vec<String>, Block)>,
    },
    /// `return [expr];`
    Return(Option<ExprId>),
    /// `break [expr];`
    Break,
    /// `continue;`
    Continue,
    /// A nested item (fn/struct/use/…), skipped by the rule passes.
    Item,
    /// Nothing (stray `;`, or recovery).
    Empty,
}

/// One expression with its source position.
#[derive(Debug)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// 1-based line of the expression's first token.
    pub line: u32,
    /// 1-based column of the expression's first token.
    pub col: u32,
}

/// Expression shapes the rule passes understand.
#[derive(Debug)]
pub enum ExprKind {
    /// Numeric/string/char/bool literal.
    Lit,
    /// `a::b::c` (single identifiers are one-segment paths).
    Path(Vec<String>),
    /// `base.name` (tuple indices appear as `"0"`, `"1"`, …).
    Field {
        /// The projected expression.
        base: ExprId,
        /// Field name or tuple index.
        name: String,
    },
    /// `base.name(args)`.
    MethodCall {
        /// Receiver.
        base: ExprId,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<ExprId>,
    },
    /// `callee(args)`.
    Call {
        /// The called expression (usually a path).
        callee: ExprId,
        /// Arguments.
        args: Vec<ExprId>,
    },
    /// `lhs op rhs` for a non-assignment binary operator.
    Binary {
        /// Operator text (`+`, `==`, `&&`, …).
        op: String,
        /// Left operand.
        lhs: ExprId,
        /// Right operand.
        rhs: ExprId,
    },
    /// `target op value` for `=`, `+=`, `-=`, ….
    Assign {
        /// Operator text (`=`, `+=`, …).
        op: String,
        /// Assignment target.
        target: ExprId,
        /// Assigned value.
        value: ExprId,
    },
    /// `expr as Ty`.
    Cast {
        /// The cast expression.
        expr: ExprId,
        /// Target type, space-joined.
        ty: String,
    },
    /// `Path { field: value, … }`.
    StructLit {
        /// The struct path's last segment.
        path: String,
        /// Fields as `(name, value)`; shorthand fields get a synthetic
        /// path expression as their value.
        fields: Vec<(String, ExprId)>,
    },
    /// `name!(…)` — contents are not parsed.
    MacroCall {
        /// Macro name.
        name: String,
    },
    /// `|args| body` / `move |args| body`.
    Closure {
        /// The body expression.
        body: ExprId,
    },
    /// `&e`, `&mut e`, `*e`, `!e`, unary `-e` — transparent wrappers.
    Unary {
        /// The wrapped expression.
        expr: ExprId,
    },
    /// `{ stmts }` in expression position; also holds `if`/`match`/
    /// `loop` expressions (as their statement form in a one-stmt block).
    BlockExpr {
        /// The statements.
        block: Block,
    },
    /// `(a, b, …)` / `[a, b, …]`.
    Tuple {
        /// Elements.
        elems: Vec<ExprId>,
    },
    /// `base[index]`.
    Index {
        /// Indexed expression.
        base: ExprId,
        /// Index expression.
        index: ExprId,
    },
    /// Anything the parser does not model.
    Opaque,
}

/// Parse a comment-free token slice (the caller filters comments and
/// test-masked tokens) into a [`FileAst`].
pub fn parse(toks: &[&Token]) -> FileAst {
    let mut p = Parser {
        t: toks,
        i: 0,
        out: FileAst::default(),
        depth: 0,
    };
    p.top_level();
    p.out
}

/// Multi-character operators, longest first (the lexer emits single
/// punctuation characters; adjacency re-joins them).
const OPS: [&str; 22] = [
    "<<=", ">>=", "..=", "&&", "||", "==", "!=", "<=", ">=", "->", "=>", "::", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "<<", "..",
];

struct Parser<'a> {
    t: &'a [&'a Token],
    i: usize,
    out: FileAst,
    depth: u32,
}

impl<'a> Parser<'a> {
    // -- token helpers ----------------------------------------------------

    fn tok(&self, off: usize) -> Option<&'a Token> {
        self.t.get(self.i + off).copied()
    }

    fn ident(&self, off: usize) -> Option<&'a str> {
        match self.tok(off) {
            Some(t) if t.kind == TokenKind::Ident => Some(t.text.as_str()),
            _ => None,
        }
    }

    fn is_ident(&self, off: usize, s: &str) -> bool {
        self.ident(off) == Some(s)
    }

    fn is_punct(&self, off: usize, ch: char) -> bool {
        matches!(self.tok(off), Some(t) if t.kind == TokenKind::Punct && t.text.starts_with(ch))
    }

    fn pos(&self) -> (u32, u32) {
        self.tok(0).map(|t| (t.line, t.col)).unwrap_or((0, 0))
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    /// The longest known multi-char operator at the cursor, if its
    /// punctuation tokens are source-adjacent.
    fn op(&self) -> Option<&'static str> {
        let first = self.tok(0)?;
        if first.kind != TokenKind::Punct {
            return None;
        }
        'op: for cand in OPS {
            let n = cand.chars().count();
            let mut col = first.col;
            for (k, want) in cand.chars().enumerate() {
                match self.tok(k) {
                    Some(t)
                        if t.kind == TokenKind::Punct
                            && t.text.starts_with(want)
                            && t.line == first.line
                            && t.col == col =>
                    {
                        col += 1;
                    }
                    _ => continue 'op,
                }
            }
            let _ = n;
            return Some(cand);
        }
        None
    }

    /// Is exactly this multi-char operator at the cursor?
    fn at_op(&self, want: &str) -> bool {
        self.op() == Some(want)
    }

    fn bump_op(&mut self, op: &str) {
        self.i += op.chars().count();
    }

    /// Skip a balanced `(…)`, `[…]`, or `{…}` group starting at the
    /// cursor; no-op if the cursor is not on `open`.
    fn skip_group(&mut self, open: char, close: char) {
        if !self.is_punct(0, open) {
            return;
        }
        let mut depth = 0i32;
        while self.i < self.t.len() {
            if self.is_punct(0, open) {
                depth += 1;
            } else if self.is_punct(0, close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skip generic arguments `<…>` (handles `->` inside fn-pointer
    /// types and nested angles); no-op unless the cursor is on `<`.
    fn skip_angles(&mut self) {
        if !self.is_punct(0, '<') {
            return;
        }
        let mut depth = 0i32;
        while self.i < self.t.len() {
            if self.at_op("->") {
                self.bump_op("->");
                continue;
            }
            if self.is_punct(0, '<') {
                depth += 1;
            } else if self.is_punct(0, '>') {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            } else if self.is_punct(0, '(') {
                self.skip_group('(', ')');
                continue;
            }
            self.bump();
        }
    }

    /// Skip one `#[…]` / `#![…]` attribute at the cursor.
    fn skip_attr(&mut self) -> bool {
        if !self.is_punct(0, '#') {
            return false;
        }
        self.bump();
        if self.is_punct(0, '!') {
            self.bump();
        }
        self.skip_group('[', ']');
        true
    }

    // -- items ------------------------------------------------------------

    /// Scan the whole file for `struct` and `fn` items; everything else
    /// is skipped token-by-token (which safely descends into `impl` and
    /// `mod` bodies).
    fn top_level(&mut self) {
        while self.i < self.t.len() {
            if self.skip_attr() {
                continue;
            }
            if self.is_ident(0, "struct") {
                self.struct_item();
            } else if self.is_ident(0, "fn") {
                self.fn_item();
            } else if self.is_punct(0, '"') {
                self.bump();
            } else {
                match self.tok(0).map(|t| t.kind) {
                    // Never look for items inside literals.
                    Some(TokenKind::Str) | Some(TokenKind::Char) => self.bump(),
                    _ => self.bump(),
                }
            }
        }
    }

    /// `struct Name [<…>] { fields } | ( … ); | ;`
    fn struct_item(&mut self) {
        self.bump(); // struct
        let Some(name) = self.ident(0) else {
            return;
        };
        let strukt = name.to_string();
        self.bump();
        self.skip_angles();
        // Skip a `where` clause.
        while self.i < self.t.len() && !self.is_punct(0, '{') && !self.is_punct(0, '(') {
            if self.is_punct(0, ';') {
                self.bump();
                return; // unit struct
            }
            self.bump();
        }
        if self.is_punct(0, '(') {
            self.skip_group('(', ')'); // tuple struct: no named fields
            if self.is_punct(0, ';') {
                self.bump();
            }
            return;
        }
        if !self.is_punct(0, '{') {
            return;
        }
        self.bump(); // {
        while self.i < self.t.len() && !self.is_punct(0, '}') {
            if self.skip_attr() {
                continue;
            }
            if self.is_ident(0, "pub") {
                self.bump();
                if self.is_punct(0, '(') {
                    self.skip_group('(', ')');
                }
                continue;
            }
            let (Some(fname), true) = (self.ident(0), self.is_punct(1, ':')) else {
                self.bump();
                continue;
            };
            let (line, col) = self.pos();
            let fname = fname.to_string();
            self.bump(); // name
            self.bump(); // :
            let ty = self.type_until(&[',', '}']);
            self.out.fields.push(FieldDecl {
                strukt: strukt.clone(),
                name: fname,
                ty,
                line,
                col,
            });
            if self.is_punct(0, ',') {
                self.bump();
            }
        }
        if self.is_punct(0, '}') {
            self.bump();
        }
    }

    /// Collect type tokens until one of `stops` at bracket depth zero;
    /// the stop token is left at the cursor.
    fn type_until(&mut self, stops: &[char]) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while let Some(t) = self.tok(0) {
            if self.at_op("->") {
                parts.push("->".into());
                self.bump_op("->");
                continue;
            }
            if t.kind == TokenKind::Punct {
                let c = t.text.chars().next().unwrap_or(' ');
                match c {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    '(' => paren += 1,
                    ')' => {
                        paren -= 1;
                        if paren < 0 {
                            break;
                        }
                    }
                    '[' => bracket += 1,
                    ']' => bracket -= 1,
                    _ => {}
                }
                if angle <= 0 && paren <= 0 && bracket <= 0 && stops.contains(&c) {
                    break;
                }
            }
            parts.push(t.text.clone());
            self.bump();
        }
        parts.join(" ")
    }

    /// `fn name [<…>] (params) [-> Ty] [where …] { body } | ;`
    fn fn_item(&mut self) {
        let (line, col) = self.pos();
        self.bump(); // fn
        let Some(name) = self.ident(0) else {
            return; // `fn(` pointer type or malformed — not an item
        };
        let name = name.to_string();
        self.bump();
        self.skip_angles();
        if !self.is_punct(0, '(') {
            return;
        }
        let params = self.params();
        let mut ret_ty = String::new();
        if self.at_op("->") {
            self.bump_op("->");
            ret_ty = self.type_until(&['{', ';']);
        }
        // Skip a `where` clause (type_until stops at `{`).
        if self.is_ident(0, "where") {
            self.bump();
            let _ = self.type_until(&['{', ';']);
        }
        if self.is_punct(0, ';') {
            self.bump();
            return; // trait method declaration
        }
        if !self.is_punct(0, '{') {
            return;
        }
        let body = self.block();
        self.out.fns.push(FnDef {
            name,
            params,
            ret_ty,
            body,
            line,
            col,
        });
    }

    /// Parse `(name: Ty, …)`; the cursor is on `(`.
    fn params(&mut self) -> Vec<Param> {
        let mut params = Vec::new();
        self.bump(); // (
        while self.i < self.t.len() && !self.is_punct(0, ')') {
            if self.skip_attr() {
                continue;
            }
            // `self`, `&self`, `&mut self`, `mut self`.
            let mut off = 0usize;
            while self.tok(off).is_some_and(|t| {
                (t.kind == TokenKind::Punct && t.text.starts_with('&'))
                    || t.kind == TokenKind::Lifetime
                    || (t.kind == TokenKind::Ident && t.text == "mut")
            }) {
                off += 1;
            }
            if self.ident(off) == Some("self") {
                self.i += off + 1;
                params.push(Param {
                    name: "self".into(),
                    ty: "Self".into(),
                });
                if self.is_punct(0, ',') {
                    self.bump();
                }
                continue;
            }
            // `name: Ty` (or a pattern — collapse to its first ident).
            let mut name = String::from("_");
            let mut guard = 0usize;
            while self.i < self.t.len() && !self.is_punct(0, ':') && !self.is_punct(0, ')') {
                if let Some(id) = self.ident(0) {
                    if name == "_" && id != "mut" && id != "ref" {
                        name = id.to_string();
                    }
                }
                self.bump();
                guard += 1;
                if guard > 32 {
                    break;
                }
            }
            if self.is_punct(0, ':') {
                self.bump();
                let ty = self.type_until(&[',', ')']);
                params.push(Param { name, ty });
            }
            if self.is_punct(0, ',') {
                self.bump();
            }
        }
        if self.is_punct(0, ')') {
            self.bump();
        }
        params
    }

    // -- statements -------------------------------------------------------

    /// Parse a `{ … }` block; the cursor is on `{`.
    fn block(&mut self) -> Block {
        let mut blk = Block::default();
        if !self.is_punct(0, '{') {
            return blk;
        }
        self.bump(); // {
        self.depth += 1;
        if self.depth > 192 {
            // Deep nesting: consume the group opaquely rather than
            // recursing further.
            self.i = self.i.saturating_sub(1);
            self.skip_group('{', '}');
            self.depth -= 1;
            return blk;
        }
        while self.i < self.t.len() && !self.is_punct(0, '}') {
            let before = self.i;
            if let Some(s) = self.stmt() {
                blk.stmts.push(s);
            }
            if self.i == before {
                self.bump(); // always make progress
            }
        }
        if self.is_punct(0, '}') {
            self.bump();
        }
        self.depth -= 1;
        blk
    }

    /// One statement; `None` for stray semicolons and skipped tokens.
    fn stmt(&mut self) -> Option<StmtId> {
        while self.skip_attr() {}
        if self.is_punct(0, ';') {
            self.bump();
            return None;
        }
        let id = match self.ident(0) {
            Some("let") => self.let_stmt(),
            Some("if") => self.if_stmt(),
            Some("while") => self.while_stmt(),
            Some("loop") => {
                let (line, col) = self.pos();
                self.bump();
                let body = self.block();
                self.out.arena.push_stmt(Stmt::Loop { body, line, col })
            }
            Some("for") => self.for_stmt(),
            Some("match") => self.match_stmt(),
            Some("return") => {
                self.bump();
                let value = if self.is_punct(0, ';') || self.is_punct(0, '}') {
                    None
                } else {
                    Some(self.expr(true))
                };
                self.out.arena.push_stmt(Stmt::Return(value))
            }
            Some("break") => {
                self.bump();
                while self.i < self.t.len() && !self.is_punct(0, ';') && !self.is_punct(0, '}') {
                    self.bump();
                }
                self.out.arena.push_stmt(Stmt::Break)
            }
            Some("continue") => {
                self.bump();
                self.out.arena.push_stmt(Stmt::Continue)
            }
            Some("unsafe") if self.is_punct(1, '{') => {
                self.bump();
                let block = self.block();
                let (l, c) = self.pos();
                let e = self.out.arena.push_expr(ExprKind::BlockExpr { block }, l, c);
                self.out.arena.push_stmt(Stmt::Expr(e))
            }
            Some("fn") => {
                self.fn_item();
                self.out.arena.push_stmt(Stmt::Item)
            }
            Some("struct") => {
                self.struct_item();
                self.out.arena.push_stmt(Stmt::Item)
            }
            Some(kw @ ("use" | "mod" | "impl" | "trait" | "enum" | "type" | "static" | "const"))
                // `const` in statement position is a nested item; type
                // ascription etc. never start a statement with it.
                if kw != "const" || self.ident(1).is_some() =>
            {
                self.skip_item();
                self.out.arena.push_stmt(Stmt::Item)
            }
            _ => {
                let e = self.expr(true);
                self.out.arena.push_stmt(Stmt::Expr(e))
            }
        };
        if self.is_punct(0, ';') {
            self.bump();
        }
        Some(id)
    }

    /// Skip a nested non-fn item: through its `{…}` body or to `;`.
    fn skip_item(&mut self) {
        while self.i < self.t.len() {
            if self.is_punct(0, ';') {
                self.bump();
                return;
            }
            if self.is_punct(0, '{') {
                self.skip_group('{', '}');
                return;
            }
            self.bump();
        }
    }

    /// `let PAT [: Ty] [= init] [else { … }] ;`
    fn let_stmt(&mut self) -> StmtId {
        let (line, col) = self.pos();
        self.bump(); // let
        let names = self.pattern_names(&[':', '=', ';']);
        let ty = if self.is_punct(0, ':') {
            self.bump();
            Some(self.type_until(&['=', ';']))
        } else {
            None
        };
        let init = if self.is_punct(0, '=') && !self.at_op("==") {
            self.bump();
            Some(self.expr(true))
        } else {
            None
        };
        if self.is_ident(0, "else") {
            self.bump();
            let _ = self.block(); // diverging else: contents not modeled
        }
        self.out.arena.push_stmt(Stmt::Let {
            names,
            ty,
            init,
            line,
            col,
        })
    }

    /// Collect the binding names of a pattern, stopping at any of
    /// `stops` at bracket depth zero. Uppercase-initial idents
    /// (constructors) and keywords are not bindings.
    fn pattern_names(&mut self, stops: &[char]) -> Vec<String> {
        let mut names = Vec::new();
        let mut paren = 0i32;
        while let Some(t) = self.tok(0) {
            if self.at_op("=>") {
                break;
            }
            match t.kind {
                TokenKind::Punct => {
                    let c = t.text.chars().next().unwrap_or(' ');
                    match c {
                        '(' | '[' | '{' => paren += 1,
                        ')' | ']' | '}' => {
                            paren -= 1;
                            if paren < 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if paren <= 0 && stops.contains(&c) {
                        break;
                    }
                }
                TokenKind::Ident => {
                    let id = t.text.as_str();
                    let keyword = matches!(id, "mut" | "ref" | "box" | "_" | "in" | "if");
                    let ctor = id.starts_with(|ch: char| ch.is_ascii_uppercase());
                    // A lowercase ident followed by `::` or `(` is a
                    // path/call in a guard, not a binding.
                    let pathish = self.at_op_at(1, "::") || self.is_punct(1, '(');
                    if id == "in" || (id == "if" && paren == 0) {
                        break;
                    }
                    if !keyword && !ctor && !pathish && !names.contains(&id.to_string()) {
                        names.push(id.to_string());
                    }
                }
                _ => {}
            }
            self.bump();
        }
        names
    }

    /// Is the multi-char operator `want` at cursor offset `off`?
    fn at_op_at(&self, off: usize, want: &str) -> bool {
        let save = Parser {
            t: self.t,
            i: self.i + off,
            out: FileAst::default(),
            depth: 0,
        };
        save.at_op(want)
    }

    /// `if [let PAT =] cond { … } [else …]`; `if let` desugars to Match.
    fn if_stmt(&mut self) -> StmtId {
        self.bump(); // if
        if self.is_ident(0, "let") {
            self.bump();
            let names = self.pattern_names(&['=']);
            if self.is_punct(0, '=') {
                self.bump();
            }
            let scrutinee = self.expr(false);
            let then_blk = self.block();
            let mut arms = vec![(names, then_blk)];
            if self.is_ident(0, "else") {
                self.bump();
                let els = if self.is_ident(0, "if") {
                    let s = self.if_stmt();
                    Block { stmts: vec![s] }
                } else {
                    self.block()
                };
                arms.push((Vec::new(), els));
            }
            return self.out.arena.push_stmt(Stmt::Match { scrutinee, arms });
        }
        let cond = self.expr(false);
        let then_blk = self.block();
        let els = if self.is_ident(0, "else") {
            self.bump();
            if self.is_ident(0, "if") {
                let s = self.if_stmt();
                Some(Block { stmts: vec![s] })
            } else {
                Some(self.block())
            }
        } else {
            None
        };
        self.out.arena.push_stmt(Stmt::If {
            cond,
            then_blk,
            els,
        })
    }

    /// `while [let PAT =] cond { … }`.
    fn while_stmt(&mut self) -> StmtId {
        let (line, col) = self.pos();
        self.bump(); // while
        if self.is_ident(0, "let") {
            self.bump();
            let _ = self.pattern_names(&['=']);
            if self.is_punct(0, '=') {
                self.bump();
            }
        }
        let cond = self.expr(false);
        let body = self.block();
        self.out.arena.push_stmt(Stmt::While {
            cond,
            body,
            line,
            col,
        })
    }

    /// `for PAT in iter { … }`.
    fn for_stmt(&mut self) -> StmtId {
        let (line, col) = self.pos();
        self.bump(); // for
        let names = self.pattern_names(&[]);
        if self.is_ident(0, "in") {
            self.bump();
        }
        let iter = self.expr(false);
        let body = self.block();
        self.out.arena.push_stmt(Stmt::For {
            names,
            iter,
            body,
            line,
            col,
        })
    }

    /// `match scrutinee { PAT [| PAT] [if guard] => body, … }`.
    fn match_stmt(&mut self) -> StmtId {
        self.bump(); // match
        let scrutinee = self.expr(false);
        let mut arms = Vec::new();
        if self.is_punct(0, '{') {
            self.bump();
            while self.i < self.t.len() && !self.is_punct(0, '}') {
                while self.skip_attr() {}
                let names = self.pattern_names(&[]);
                // Skip a guard expression up to `=>`.
                while self.i < self.t.len() && !self.at_op("=>") && !self.is_punct(0, '}') {
                    if self.is_punct(0, '(') {
                        self.skip_group('(', ')');
                    } else if self.is_punct(0, '{') {
                        self.skip_group('{', '}');
                    } else {
                        self.bump();
                    }
                }
                if !self.at_op("=>") {
                    break;
                }
                self.bump_op("=>");
                let body = if self.is_punct(0, '{') {
                    self.block()
                } else {
                    let e = self.expr(true);
                    let s = self.out.arena.push_stmt(Stmt::Expr(e));
                    Block { stmts: vec![s] }
                };
                arms.push((names, body));
                if self.is_punct(0, ',') {
                    self.bump();
                }
            }
            if self.is_punct(0, '}') {
                self.bump();
            }
        }
        self.out.arena.push_stmt(Stmt::Match { scrutinee, arms })
    }

    // -- expressions ------------------------------------------------------

    /// Pratt expression parser. `allow_struct` gates `Path { … }`
    /// literals (conditions disallow them, like Rust itself).
    fn expr(&mut self, allow_struct: bool) -> ExprId {
        self.depth += 1;
        let e = if self.depth > 192 {
            let (l, c) = self.pos();
            self.out.arena.push_expr(ExprKind::Opaque, l, c)
        } else {
            self.assign_expr(allow_struct)
        };
        self.depth -= 1;
        e
    }

    fn assign_expr(&mut self, allow_struct: bool) -> ExprId {
        let (line, col) = self.pos();
        let lhs = self.range_expr(allow_struct);
        for op in ["<<=", ">>=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|="] {
            if self.at_op(op) {
                self.bump_op(op);
                let value = self.assign_expr(allow_struct);
                return self.out.arena.push_expr(
                    ExprKind::Assign {
                        op: op.into(),
                        target: lhs,
                        value,
                    },
                    line,
                    col,
                );
            }
        }
        if self.is_punct(0, '=') && !self.at_op("==") && !self.at_op("=>") {
            self.bump();
            let value = self.assign_expr(allow_struct);
            return self.out.arena.push_expr(
                ExprKind::Assign {
                    op: "=".into(),
                    target: lhs,
                    value,
                },
                line,
                col,
            );
        }
        lhs
    }

    fn range_expr(&mut self, allow_struct: bool) -> ExprId {
        let (line, col) = self.pos();
        // Prefix range `..end` / `..=end`.
        if self.at_op("..=") || self.at_op("..") {
            let op = if self.at_op("..=") { "..=" } else { ".." };
            self.bump_op(op);
            if self.range_operand_follows() {
                let _ = self.binary_expr(0, allow_struct);
            }
            return self.out.arena.push_expr(ExprKind::Opaque, line, col);
        }
        let lhs = self.binary_expr(0, allow_struct);
        if self.at_op("..=") || self.at_op("..") {
            let op = if self.at_op("..=") { "..=" } else { ".." };
            self.bump_op(op);
            if self.range_operand_follows() {
                let _ = self.binary_expr(0, allow_struct);
            }
            return self.out.arena.push_expr(ExprKind::Opaque, line, col);
        }
        lhs
    }

    fn range_operand_follows(&self) -> bool {
        match self.tok(0) {
            None => false,
            Some(t) if t.kind == TokenKind::Punct => !matches!(
                t.text.chars().next().unwrap_or(' '),
                ')' | ']' | '}' | ',' | ';' | '='
            ),
            Some(_) => true,
        }
    }

    /// Binary operators by precedence-climbing. `min_bp` is the minimum
    /// binding power to continue.
    fn binary_expr(&mut self, min_bp: u8, allow_struct: bool) -> ExprId {
        let (line, col) = self.pos();
        let mut lhs = self.unary_expr(allow_struct);
        loop {
            let (op, bp): (&str, u8) = if self.at_op("||") {
                ("||", 1)
            } else if self.at_op("&&") {
                ("&&", 2)
            } else if self.at_op("==") {
                ("==", 3)
            } else if self.at_op("!=") {
                ("!=", 3)
            } else if self.at_op("<=") {
                ("<=", 3)
            } else if self.at_op(">=") {
                (">=", 3)
            } else if self.is_punct(0, '<') && !self.at_op("<<") {
                ("<", 3)
            } else if self.is_punct(0, '>') && !self.at_op(">>") {
                (">", 3)
            } else if self.is_punct(0, '|') && !self.at_op("||") && !self.at_op("|=") {
                ("|", 4)
            } else if self.is_punct(0, '^') && !self.at_op("^=") {
                ("^", 5)
            } else if self.is_punct(0, '&') && !self.at_op("&&") && !self.at_op("&=") {
                ("&", 6)
            } else if self.at_op("<<") {
                ("<<", 7)
            } else if self.at_op(">>") {
                (">>", 7)
            } else if self.is_punct(0, '+') && !self.at_op("+=") {
                ("+", 8)
            } else if self.is_punct(0, '-') && !self.at_op("-=") && !self.at_op("->") {
                ("-", 8)
            } else if self.is_punct(0, '*') && !self.at_op("*=") {
                ("*", 9)
            } else if self.is_punct(0, '/') && !self.at_op("/=") {
                ("/", 9)
            } else if self.is_punct(0, '%') && !self.at_op("%=") {
                ("%", 9)
            } else {
                break;
            };
            if bp < min_bp {
                break;
            }
            if op.len() == 1 {
                self.bump();
            } else {
                self.bump_op(op);
            }
            let rhs = self.binary_expr(bp + 1, allow_struct);
            lhs = self.out.arena.push_expr(
                ExprKind::Binary {
                    op: op.into(),
                    lhs,
                    rhs,
                },
                line,
                col,
            );
        }
        lhs
    }

    fn unary_expr(&mut self, allow_struct: bool) -> ExprId {
        let (line, col) = self.pos();
        if self.is_punct(0, '&') && !self.at_op("&&") {
            self.bump();
            if self.is_ident(0, "mut") {
                self.bump();
            }
            let expr = self.unary_expr(allow_struct);
            return self
                .out
                .arena
                .push_expr(ExprKind::Unary { expr }, line, col);
        }
        if self.at_op("&&") {
            // `&&x` — two reference levels.
            self.bump_op("&&");
            let expr = self.unary_expr(allow_struct);
            return self
                .out
                .arena
                .push_expr(ExprKind::Unary { expr }, line, col);
        }
        if self.is_punct(0, '*') || self.is_punct(0, '!') || self.is_punct(0, '-') {
            self.bump();
            let expr = self.unary_expr(allow_struct);
            return self
                .out
                .arena
                .push_expr(ExprKind::Unary { expr }, line, col);
        }
        self.postfix_expr(allow_struct)
    }

    fn postfix_expr(&mut self, allow_struct: bool) -> ExprId {
        let (line, col) = self.pos();
        let mut e = self.primary_expr(allow_struct);
        loop {
            if self.is_punct(0, '?') {
                self.bump();
                continue;
            }
            if self.is_ident(0, "as") && self.i > 0 {
                self.bump();
                let ty = self.cast_type();
                e = self
                    .out
                    .arena
                    .push_expr(ExprKind::Cast { expr: e, ty }, line, col);
                continue;
            }
            if self.is_punct(0, '.') && !self.at_op("..") {
                self.bump();
                // `.await` (none in this workspace, but harmless).
                if self.is_ident(0, "await") {
                    self.bump();
                    continue;
                }
                // Tuple index `.0`.
                if let Some(t) = self.tok(0) {
                    if t.kind == TokenKind::Num {
                        let name = t.text.clone();
                        let (l, c) = (t.line, t.col);
                        self.bump();
                        e = self
                            .out
                            .arena
                            .push_expr(ExprKind::Field { base: e, name }, l, c);
                        continue;
                    }
                }
                let Some(name) = self.ident(0) else { continue };
                let name = name.to_string();
                let (l, c) = self.pos();
                self.bump();
                // Turbofish `::<…>`.
                if self.at_op("::") {
                    self.bump_op("::");
                    self.skip_angles();
                }
                if self.is_punct(0, '(') {
                    let args = self.call_args();
                    e = self.out.arena.push_expr(
                        ExprKind::MethodCall {
                            base: e,
                            name,
                            args,
                        },
                        l,
                        c,
                    );
                } else {
                    e = self
                        .out
                        .arena
                        .push_expr(ExprKind::Field { base: e, name }, l, c);
                }
                continue;
            }
            if self.is_punct(0, '(') {
                let args = self.call_args();
                let (l, c) = (line, col);
                e = self
                    .out
                    .arena
                    .push_expr(ExprKind::Call { callee: e, args }, l, c);
                continue;
            }
            if self.is_punct(0, '[') {
                self.bump();
                let index = self.expr(true);
                if self.is_punct(0, ']') {
                    self.bump();
                }
                e = self
                    .out
                    .arena
                    .push_expr(ExprKind::Index { base: e, index }, line, col);
                continue;
            }
            break;
        }
        e
    }

    /// The type operand of `as` — conservative: idents, `::`, and one
    /// angle group.
    fn cast_type(&mut self) -> String {
        let mut parts: Vec<String> = Vec::new();
        loop {
            if self.at_op("::") {
                parts.push("::".into());
                self.bump_op("::");
                continue;
            }
            match self.tok(0) {
                Some(t) if t.kind == TokenKind::Ident => {
                    parts.push(t.text.clone());
                    self.bump();
                    if self.is_punct(0, '<') {
                        let from = self.i;
                        self.skip_angles();
                        let _ = from;
                        parts.push("<>".into());
                    }
                    if !self.at_op("::") {
                        break;
                    }
                }
                Some(t) if t.kind == TokenKind::Punct && t.text.starts_with('&') => {
                    parts.push("&".into());
                    self.bump();
                }
                Some(t) if t.kind == TokenKind::Punct && t.text.starts_with('*') => {
                    // raw pointer cast `as *const T`
                    parts.push("*".into());
                    self.bump();
                }
                _ => break,
            }
        }
        parts.join(" ")
    }

    /// `(a, b, …)` call arguments; the cursor is on `(`.
    fn call_args(&mut self) -> Vec<ExprId> {
        let mut args = Vec::new();
        self.bump(); // (
        while self.i < self.t.len() && !self.is_punct(0, ')') {
            let before = self.i;
            args.push(self.expr(true));
            // Consume the separator — or force progress on a token the
            // expression grammar refused (same recovery either way).
            if self.is_punct(0, ',') || self.i == before {
                self.bump();
            }
        }
        if self.is_punct(0, ')') {
            self.bump();
        }
        args
    }

    fn primary_expr(&mut self, allow_struct: bool) -> ExprId {
        let (line, col) = self.pos();
        let Some(t) = self.tok(0) else {
            return self.out.arena.push_expr(ExprKind::Opaque, line, col);
        };
        match t.kind {
            TokenKind::Num | TokenKind::Str | TokenKind::Char | TokenKind::Lifetime => {
                self.bump();
                self.out.arena.push_expr(ExprKind::Lit, line, col)
            }
            TokenKind::Punct if t.text.starts_with('(') || t.text.starts_with('[') => {
                let close = if t.text.starts_with('(') { ')' } else { ']' };
                self.bump();
                let mut elems = Vec::new();
                while self.i < self.t.len() && !self.is_punct(0, close) {
                    let before = self.i;
                    elems.push(self.expr(true));
                    // Separator, `[expr; N]` length marker, or forced
                    // progress past an unparseable token.
                    if self.is_punct(0, ',') || self.is_punct(0, ';') || self.i == before {
                        self.bump();
                    }
                }
                if self.is_punct(0, close) {
                    self.bump();
                }
                if elems.len() == 1 && close == ')' {
                    // Parenthesized expression: transparent.
                    elems.remove(0)
                } else {
                    self.out
                        .arena
                        .push_expr(ExprKind::Tuple { elems }, line, col)
                }
            }
            TokenKind::Punct if t.text.starts_with('{') => {
                let block = self.block();
                self.out
                    .arena
                    .push_expr(ExprKind::BlockExpr { block }, line, col)
            }
            TokenKind::Punct if t.text.starts_with('|') => self.closure_expr(line, col),
            TokenKind::Ident => self.ident_expr(line, col, allow_struct),
            _ => {
                self.bump();
                self.out.arena.push_expr(ExprKind::Opaque, line, col)
            }
        }
    }

    /// `|params| body` / `move |params| body` / `|| body`.
    fn closure_expr(&mut self, line: u32, col: u32) -> ExprId {
        if self.at_op("||") {
            self.bump_op("||");
        } else {
            self.bump(); // |
            let mut depth = 0i32;
            while self.i < self.t.len() {
                if self.is_punct(0, '(') || self.is_punct(0, '[') || self.is_punct(0, '<') {
                    depth += 1;
                } else if self.is_punct(0, ')') || self.is_punct(0, ']') || self.is_punct(0, '>') {
                    depth -= 1;
                } else if self.is_punct(0, '|') && depth <= 0 {
                    self.bump();
                    break;
                }
                self.bump();
            }
        }
        // Optional `-> Ty` before a braced body.
        if self.at_op("->") {
            self.bump_op("->");
            let _ = self.type_until(&['{']);
        }
        let body = self.expr(true);
        self.out
            .arena
            .push_expr(ExprKind::Closure { body }, line, col)
    }

    /// Identifier-led expression: path, call, struct literal, macro,
    /// closure (`move |…|`), or control-flow in expression position.
    fn ident_expr(&mut self, line: u32, col: u32, allow_struct: bool) -> ExprId {
        let head = self.ident(0).unwrap_or("").to_string();
        match head.as_str() {
            "if" | "match" | "loop" | "while" | "for" | "unsafe" => {
                // Control flow in expression position: parse its
                // statement form into a one-statement block.
                let s = match head.as_str() {
                    "if" => self.if_stmt(),
                    "match" => self.match_stmt(),
                    "while" => self.while_stmt(),
                    "for" => self.for_stmt(),
                    "unsafe" => {
                        self.bump();
                        let block = self.block();
                        let e = self
                            .out
                            .arena
                            .push_expr(ExprKind::BlockExpr { block }, line, col);
                        self.out.arena.push_stmt(Stmt::Expr(e))
                    }
                    _ => {
                        self.bump();
                        let body = self.block();
                        self.out.arena.push_stmt(Stmt::Loop { body, line, col })
                    }
                };
                let block = Block { stmts: vec![s] };
                return self
                    .out
                    .arena
                    .push_expr(ExprKind::BlockExpr { block }, line, col);
            }
            "move" if self.is_punct(1, '|') => {
                self.bump();
                return self.closure_expr(line, col);
            }
            "return" => {
                self.bump();
                let value =
                    if self.is_punct(0, ';') || self.is_punct(0, '}') || self.is_punct(0, ',') {
                        None
                    } else {
                        Some(self.expr(true))
                    };
                let s = self.out.arena.push_stmt(Stmt::Return(value));
                let block = Block { stmts: vec![s] };
                return self
                    .out
                    .arena
                    .push_expr(ExprKind::BlockExpr { block }, line, col);
            }
            "break" | "continue" => {
                self.bump();
                let s = self.out.arena.push_stmt(if head == "break" {
                    Stmt::Break
                } else {
                    Stmt::Continue
                });
                let block = Block { stmts: vec![s] };
                return self
                    .out
                    .arena
                    .push_expr(ExprKind::BlockExpr { block }, line, col);
            }
            _ => {}
        }
        // Path: seg (:: seg)* with optional `::<…>` turbofish segments.
        let mut segs = vec![head];
        self.bump();
        while self.at_op("::") {
            self.bump_op("::");
            if self.is_punct(0, '<') {
                self.skip_angles();
                continue;
            }
            match self.ident(0) {
                Some(seg) => {
                    segs.push(seg.to_string());
                    self.bump();
                }
                None => break,
            }
        }
        // Macro call: contents opaque.
        if self.is_punct(0, '!') && !self.at_op("!=") {
            self.bump();
            if self.is_punct(0, '(') {
                self.skip_group('(', ')');
            } else if self.is_punct(0, '[') {
                self.skip_group('[', ']');
            } else if self.is_punct(0, '{') {
                self.skip_group('{', '}');
            }
            let name = segs.last().cloned().unwrap_or_default();
            return self
                .out
                .arena
                .push_expr(ExprKind::MacroCall { name }, line, col);
        }
        // Struct literal: `Path { field: value, … }` — only when the
        // context allows it and the head looks like a type.
        let typeish = segs
            .last()
            .is_some_and(|s| s.starts_with(|c: char| c.is_ascii_uppercase()));
        if allow_struct && typeish && self.is_punct(0, '{') && !self.struct_lit_is_block() {
            let path = segs.last().cloned().unwrap_or_default();
            let fields = self.struct_lit_fields();
            return self
                .out
                .arena
                .push_expr(ExprKind::StructLit { path, fields }, line, col);
        }
        self.out.arena.push_expr(ExprKind::Path(segs), line, col)
    }

    /// Heuristic: `Type {` followed immediately by `}` or `ident:` or
    /// `ident,`/`ident}` (shorthand) or `..` is a struct literal; other
    /// brace contents mean a block (e.g. `match x { … }` arms).
    fn struct_lit_is_block(&self) -> bool {
        if self.is_punct(1, '}') {
            return false; // `Type {}`
        }
        if self.at_op_at(1, "..") {
            return false; // `Type { ..default }`
        }
        match self.ident(1) {
            Some(_) => {
                !(self.is_punct(2, ':') || self.is_punct(2, ',') || self.is_punct(2, '}'))
                    || self.at_op_at(2, "::")
            }
            None => true,
        }
    }

    /// Fields of a struct literal; the cursor is on `{`.
    fn struct_lit_fields(&mut self) -> Vec<(String, ExprId)> {
        let mut fields = Vec::new();
        self.bump(); // {
        while self.i < self.t.len() && !self.is_punct(0, '}') {
            if self.at_op("..") {
                // Functional update `..base`.
                self.bump_op("..");
                let _ = self.expr(true);
                continue;
            }
            let Some(name) = self.ident(0) else {
                self.bump();
                continue;
            };
            let name = name.to_string();
            let (l, c) = self.pos();
            self.bump();
            let value = if self.is_punct(0, ':') && !self.at_op("::") {
                self.bump();
                self.expr(true)
            } else {
                // Shorthand `Transfer { start, done }`.
                self.out
                    .arena
                    .push_expr(ExprKind::Path(vec![name.clone()]), l, c)
            };
            fields.push((name, value));
            if self.is_punct(0, ',') {
                self.bump();
            }
        }
        if self.is_punct(0, '}') {
            self.bump();
        }
        fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_src(src: &str) -> FileAst {
        let toks = tokenize(src);
        let filtered: Vec<&Token> = toks.iter().filter(|t| !t.is_comment()).collect();
        parse(&filtered)
    }

    #[test]
    fn fn_signature_and_body() {
        let ast = parse_src("fn f(a: u64, b: Picos) -> Picos { let c = a + 1; b }");
        assert_eq!(ast.fns.len(), 1);
        let f = &ast.fns[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].ty, "Picos");
        assert_eq!(f.ret_ty, "Picos");
        assert_eq!(f.body.stmts.len(), 2);
    }

    #[test]
    fn struct_fields_collected() {
        let ast = parse_src("pub struct T { pub a: Picos, b: Option<u64> }");
        assert_eq!(ast.fields.len(), 2);
        assert_eq!(ast.fields[0].ty, "Picos");
        assert_eq!(ast.fields[1].ty, "Option < u64 >");
    }

    #[test]
    fn control_flow_statements() {
        let ast = parse_src(
            "fn f(x: u64) { if x > 1 { return; } while x < 2 { } loop { break; } \
             for i in 0..x { } match x { 0 => {}, n => { let _ = n; } } }",
        );
        let f = &ast.fns[0];
        let kinds: Vec<&Stmt> = f.body.stmts.iter().map(|&s| ast.arena.stmt(s)).collect();
        assert!(matches!(kinds[0], Stmt::If { .. }));
        assert!(matches!(kinds[1], Stmt::While { .. }));
        assert!(matches!(kinds[2], Stmt::Loop { .. }));
        assert!(matches!(kinds[3], Stmt::For { .. }));
        assert!(matches!(kinds[4], Stmt::Match { .. }));
    }

    #[test]
    fn match_arms_carry_bindings() {
        let ast = parse_src(
            "fn f(x: Option<u64>) { match x { Some(ps) => { let _ = ps; }, None => {} } }",
        );
        let f = &ast.fns[0];
        let Stmt::Match { arms, .. } = ast.arena.stmt(f.body.stmts[0]) else {
            panic!("expected match");
        };
        assert_eq!(arms[0].0, vec!["ps".to_string()]);
        assert!(arms[1].0.is_empty());
    }

    #[test]
    fn method_chains_and_casts() {
        let ast = parse_src("fn f(p: Picos) -> u64 { (p.0 as u64).max(1) }");
        let f = &ast.fns[0];
        let Stmt::Expr(e) = ast.arena.stmt(f.body.stmts[0]) else {
            panic!("expected expr");
        };
        let ExprKind::MethodCall { base, name, .. } = &ast.arena.expr(*e).kind else {
            panic!("expected method call, got {:?}", ast.arena.expr(*e).kind);
        };
        assert_eq!(name, "max");
        assert!(matches!(ast.arena.expr(*base).kind, ExprKind::Cast { .. }));
    }

    #[test]
    fn struct_literals_and_shorthand() {
        let ast = parse_src("fn f(start: Picos, done: Picos) -> T { Transfer { start, done } }");
        let f = &ast.fns[0];
        let Stmt::Expr(e) = ast.arena.stmt(f.body.stmts[0]) else {
            panic!("expected expr");
        };
        let ExprKind::StructLit { path, fields } = &ast.arena.expr(*e).kind else {
            panic!("expected struct literal, got {:?}", ast.arena.expr(*e).kind);
        };
        assert_eq!(path, "Transfer");
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn closures_parse_into_bodies() {
        let ast = parse_src("fn f() { let g = |k: usize| { k + 1 }; spawn(move || loop { }); }");
        assert_eq!(ast.fns.len(), 1);
        let f = &ast.fns[0];
        assert_eq!(f.body.stmts.len(), 2);
        let Stmt::Let { init: Some(e), .. } = ast.arena.stmt(f.body.stmts[0]) else {
            panic!("expected let with init");
        };
        assert!(matches!(ast.arena.expr(*e).kind, ExprKind::Closure { .. }));
    }

    #[test]
    fn macros_are_opaque() {
        let ast = parse_src("fn f() { assert!(SystemTime::now() > 0); format!(\"{}\", x); }");
        let f = &ast.fns[0];
        for &s in &f.body.stmts {
            let Stmt::Expr(e) = ast.arena.stmt(s) else {
                panic!("expected expr stmt");
            };
            assert!(matches!(
                ast.arena.expr(*e).kind,
                ExprKind::MacroCall { .. }
            ));
        }
    }

    #[test]
    fn if_let_desugars_to_match() {
        let ast = parse_src("fn f(x: Option<u64>) { if let Some(v) = x { let _ = v; } }");
        let f = &ast.fns[0];
        let Stmt::Match { arms, .. } = ast.arena.stmt(f.body.stmts[0]) else {
            panic!("expected desugared match");
        };
        assert_eq!(arms[0].0, vec!["v".to_string()]);
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in [
            "fn f( {",
            "fn f() { let = ; }",
            "struct S { x: }",
            "fn f() { a.b.c(((((((",
            "impl X for Y { fn g() { match } }",
            "fn f() { |x| }",
        ] {
            let _ = parse_src(src);
        }
    }
}
