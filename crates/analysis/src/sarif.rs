//! SARIF 2.1.0 rendering of analyzer findings, for CI annotation.
//!
//! Hand-rolled like the rest of the crate (dependency-free). The output
//! is one `run` with the full rule catalog in `tool.driver.rules` and
//! one `result` per diagnostic; waived findings carry an in-source
//! `suppression` so that the count of *unsuppressed* results equals the
//! `--json` report's `active` count (check.sh asserts this agreement).

use crate::diag::{json_string, Diagnostic, RuleId, WaiverStatus};

/// Render a full report as a SARIF 2.1.0 document.
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    out.push_str("\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"rampage-analysis\",\"informationUri\":");
    out.push_str(&json_string("https://example.invalid/rampage/analysis"));
    out.push_str(",\"rules\":[");
    for (i, rule) in RuleId::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\"properties\":{{\"tier\":{}}}}}",
            json_string(rule.as_str()),
            json_string(rule.short_description()),
            json_string(rule.tier_name()),
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_result(d));
    }
    out.push_str("]}]}");
    out
}

fn render_result(d: &Diagnostic) -> String {
    let suppressions = match d.waiver {
        WaiverStatus::None => String::new(),
        WaiverStatus::Waived => ",\"suppressions\":[{\"kind\":\"inSource\"}]".to_string(),
    };
    format!(
        "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
         \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},\
         \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]{}}}",
        json_string(d.rule.as_str()),
        json_string(&d.message),
        json_string(&d.file),
        d.line,
        d.col,
        suppressions,
    )
}

/// The number of unsuppressed results a SARIF document would carry —
/// must agree with the `--json` report's `active` count.
pub fn active_count(diags: &[Diagnostic]) -> usize {
    diags.iter().filter(|d| d.is_active()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(rule: RuleId, waiver: WaiverStatus) -> Diagnostic {
        Diagnostic {
            file: "crates/dram/src/model.rs".into(),
            line: 7,
            col: 13,
            rule,
            message: "a \"quoted\" message".into(),
            waiver,
        }
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let doc = render_sarif(&[
            mk(RuleId::UnitMix, WaiverStatus::None),
            mk(RuleId::CancelPoll, WaiverStatus::Waived),
        ]);
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("\"name\":\"rampage-analysis\""));
        // Every rule appears in the catalog.
        for rule in RuleId::ALL {
            assert!(
                doc.contains(&format!("\"id\":\"{}\"", rule.as_str())),
                "rule {rule} missing from driver.rules"
            );
        }
        assert!(doc.contains("\"startLine\":7"));
        assert!(doc.contains("\"startColumn\":13"));
        // The waived finding is suppressed; the active one is not.
        assert_eq!(doc.matches("\"suppressions\"").count(), 1);
    }

    #[test]
    fn sarif_and_json_agree_on_active_counts() {
        let diags = vec![
            mk(RuleId::UnitMix, WaiverStatus::None),
            mk(RuleId::NondetTaint, WaiverStatus::Waived),
            mk(RuleId::ClaimReadback, WaiverStatus::None),
        ];
        let doc = render_sarif(&diags);
        let results = doc.matches("\"ruleId\"").count();
        let suppressed = doc.matches("\"suppressions\"").count();
        assert_eq!(results - suppressed, active_count(&diags));
        let json = crate::diag::render_json_report(&diags);
        assert!(json.contains(&format!("\"active\":{}", active_count(&diags))));
    }

    #[test]
    fn sarif_escapes_messages() {
        let doc = render_sarif(&[mk(RuleId::UnitMix, WaiverStatus::None)]);
        assert!(doc.contains("a \\\"quoted\\\" message"));
    }
}
