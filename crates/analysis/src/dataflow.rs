//! A small intra-procedural forward dataflow engine over [`crate::cfg`]
//! graphs.
//!
//! The engine is generic over the abstract state: a rule supplies the
//! entry state, a `join` that merges states at control-flow merges, and
//! a `transfer` applied to each [`Event`] in block order. Iteration
//! runs to a fixpoint with a conservative round cap (states in this
//! crate are finite-height — domain maps that collapse to `Unknown` on
//! conflict, taint sets over a finite variable population, booleans —
//! so the cap is a backstop, not a correctness requirement).

use crate::cfg::{Cfg, Event};

/// Run a forward analysis to fixpoint; returns the state at each
/// block's *entry*.
///
/// `join(acc, incoming)` must be monotone (only widen `acc`);
/// `transfer(event, state)` mutates the state through one event.
pub fn forward<S, J, T>(cfg: &Cfg, init: S, join: J, mut transfer: T) -> Vec<S>
where
    S: Clone + PartialEq,
    J: Fn(&mut S, &S),
    T: FnMut(&Event, &mut S),
{
    let n = cfg.blocks.len();
    let mut entry: Vec<Option<S>> = vec![None; n];
    if n == 0 {
        return Vec::new();
    }
    entry[0] = Some(init.clone());
    let mut work: Vec<usize> = vec![0];
    let mut rounds = 0usize;
    let cap = 64 * n.max(1);
    while let Some(b) = work.pop() {
        rounds += 1;
        if rounds > cap {
            break;
        }
        let Some(mut state) = entry.get(b).and_then(|s| s.clone()) else {
            continue;
        };
        for ev in &cfg.blocks[b].events {
            transfer(ev, &mut state);
        }
        for &succ in &cfg.blocks[b].succs {
            let changed = match entry.get_mut(succ) {
                Some(slot @ None) => {
                    *slot = Some(state.clone());
                    true
                }
                Some(Some(existing)) => {
                    let before = existing.clone();
                    join(existing, &state);
                    *existing != before
                }
                None => false,
            };
            if changed && !work.contains(&succ) {
                work.push(succ);
            }
        }
    }
    entry
        .into_iter()
        .map(|s| s.unwrap_or_else(|| init.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::cfg::build;
    use crate::lexer::tokenize;

    /// Reachability of a "set" statement joins with OR across paths.
    #[test]
    fn boolean_or_join_reaches_fixpoint() {
        let src = "fn f(x: u64) { if x > 0 { let set = 1; } while x < 9 { let probe = 2; } }";
        let toks = tokenize(src);
        let filtered: Vec<&crate::lexer::Token> = toks.iter().filter(|t| !t.is_comment()).collect();
        let ast = parse(&filtered);
        let cfg = build(&ast.arena, &ast.fns[0].body);
        let mut saw_probe_with_flag = false;
        let states = forward(
            &cfg,
            false,
            |acc: &mut bool, inc: &bool| *acc = *acc || *inc,
            |ev, state| {
                if let Event::Stmt(sid) = ev {
                    if let crate::ast::Stmt::Let { names, .. } = ast.arena.stmt(*sid) {
                        if names.iter().any(|n| n == "set") {
                            *state = true;
                        }
                        if names.iter().any(|n| n == "probe") && *state {
                            saw_probe_with_flag = true;
                        }
                    }
                }
            },
        );
        assert_eq!(states.len(), cfg.blocks.len());
        // `probe` is reachable both with and without `set` having run:
        // the may-analysis must see the flag at the loop body.
        assert!(saw_probe_with_flag);
    }
}
