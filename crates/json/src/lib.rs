//! A small, dependency-free JSON library for the RAMpage harness.
//!
//! The build environment has no crates.io access, so `serde`/`serde_json`
//! cannot be used; every result struct the harness persists implements
//! [`ToJson`] by hand instead (usually via the [`obj!`] macro). The
//! library keeps object key order as inserted, so serialized output is
//! deterministic — a property the experiment harness's golden-equality
//! tests rely on.
//!
//! ```
//! use rampage_json::{Json, ToJson};
//!
//! let doc = rampage_json::obj! {
//!     "name" => "table3",
//!     "sizes" => vec![128u64, 4096],
//! };
//! let text = doc.pretty();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("sizes").unwrap().as_array().unwrap().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A JSON number. Integers are kept exact (JSON itself does not limit
/// precision, and cell counters are `u64`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// Unsigned integer.
    U(u64),
    /// Signed integer (negative values only; non-negative parse as `U`).
    I(i64),
    /// Floating point.
    F(f64),
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(Num::F(f)) => Some(*f),
            Json::Num(Num::U(u)) => Some(*u as f64),
            Json::Num(Num::I(i)) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(Num::U(u)) => Some(*u),
            Json::Num(Num::I(i)) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact rendering.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering (two-space indent), ending without a newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&fmt_num(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn fmt_num(n: Num) -> String {
    match n {
        Num::U(u) => u.to_string(),
        Num::I(i) => i.to_string(),
        Num::F(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest roundtrip form for f64.
                format!("{f:?}")
            } else {
                // JSON has no Inf/NaN; null is the conventional stand-in.
                "null".into()
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our data;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8"))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Num(Num::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Num(Num::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Json::Num(Num::F(f)))
            .map_err(|_| self.err("bad number"))
    }
}

/// Conversion into a [`Json`] value — the serialization trait every
/// persisted result struct implements (by hand; there is no derive).
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(Num::F(*self))
    }
}

macro_rules! impl_to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(Num::U(*self as u64))
            }
        }
    )*};
}

impl_to_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v >= 0 {
                    Json::Num(Num::U(v as u64))
                } else {
                    Json::Num(Num::I(v))
                }
            }
        }
    )*};
}

impl_to_json_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

/// Build a [`Json::Obj`] with literal keys:
///
/// ```
/// # use rampage_json::obj;
/// let j = obj! { "a" => 1u64, "b" => "two" };
/// assert_eq!(j.get("a").unwrap().as_u64(), Some(1));
/// ```
#[macro_export]
macro_rules! obj {
    { $($k:literal => $v:expr),* $(,)? } => {
        $crate::Json::Obj(vec![
            $(($k.to_string(), $crate::ToJson::to_json(&$v))),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_values_and_order() {
        let doc = obj! {
            "z" => 1u64,
            "a" => -3i64,
            "f" => 0.25f64,
            "s" => "hi \"there\"\n",
            "v" => vec![1u64, 2, 3],
            "none" => Option::<u64>::None,
            "flag" => true,
        };
        for text in [doc.compact(), doc.pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, doc);
            // Key order survives.
            let keys: Vec<&str> = back
                .as_object()
                .unwrap()
                .iter()
                .map(|(k, _)| k.as_str())
                .collect();
            assert_eq!(keys, ["z", "a", "f", "s", "v", "none", "flag"]);
        }
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 1;
        let j = big.to_json();
        let back = Json::parse(&j.compact()).unwrap();
        assert_eq!(back.as_u64(), Some(big));
    }

    #[test]
    fn f64_roundtrips_shortest_form() {
        for f in [0.1, 1.0 / 3.0, 6.02e23, -0.0, 1e-300] {
            let back = Json::parse(&f.to_json().compact()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), f.to_bits());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\x\""] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let j = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(
            j.get("a").unwrap().as_array().unwrap()[1].get("b"),
            Some(&Json::Null)
        );
    }
}
