//! A self-contained shim of the `rand` 0.8 API surface this workspace
//! uses, for fully offline builds (the build environment has no crates.io
//! access, so the real crate cannot be vendored).
//!
//! Only what the simulator needs is provided:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen`] / [`Rng::gen_range`] over the integer and float types
//!   the generators draw
//! * [`seq::SliceRandom::shuffle`]
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real `rand::rngs::StdRng` (ChaCha12), but the
//! simulator only requires seeded determinism, not a specific stream.
//! All draws are deterministic functions of the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seeding trait, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Construct a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling trait, mirroring the subset of `rand::Rng` in use.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, integers uniform over their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: Into<std::ops::Range<T>>,
    {
        let r = range.into();
        T::sample_range(self, r)
    }
}

/// Types samplable from the standard distribution (the `rng.gen()` form).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a `Range` (the `rng.gen_range(a..b)`
/// form).
pub trait UniformSample: Sized {
    /// Draw one value from `range`.
    fn sample_range<G: Rng + ?Sized>(rng: &mut G, range: std::ops::Range<Self>) -> Self;
}

/// Debiased uniform integer in `[0, n)` via Lemire's method's simple
/// rejection variant (modulo with rejection of the biased zone).
///
/// # Panics
///
/// Panics if `n` is zero (an empty range cannot be sampled).
fn uniform_below<G: Rng + ?Sized>(rng: &mut G, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Rejection sampling: accept draws below the largest multiple of n.
    let zone = u64::MAX - (u64::MAX % n) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<G: Rng + ?Sized>(rng: &mut G, range: std::ops::Range<Self>) -> Self {
                // invariant: sampling an empty range is a caller bug.
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                range.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_range<G: Rng + ?Sized>(rng: &mut G, range: std::ops::Range<Self>) -> Self {
        // invariant: sampling an empty range is a caller bug.
        assert!(range.start < range.end, "empty range");
        let u: f64 = Standard::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64 — the workspace's standard
    /// deterministic generator (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Shim of `rand::seq::SliceRandom` (shuffle only).
    pub trait SliceRandom {
        /// Shuffle in place (Fisher–Yates).
        fn shuffle<G: Rng + ?Sized>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: Rng + ?Sized>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: usize = r.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn standard_f64_is_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..64).collect();
        let orig = v.clone();
        let mut r = StdRng::seed_from_u64(3);
        v.shuffle(&mut r);
        assert_ne!(v, orig, "64 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
