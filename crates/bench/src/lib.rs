//! Shared helpers for the Criterion bench harness.
//!
//! Each bench target regenerates one paper artifact at a reduced scale
//! (so `cargo bench` both measures the simulator's throughput and prints
//! a miniature of every table/figure), while the `repro` binary in the
//! root crate produces the full-scale versions recorded in
//! `EXPERIMENTS.md`.

use rampage_core::experiments::Workload;

/// The workload used by bench measurement loops: small enough for tight
/// iteration, large enough to exercise every subsystem (TLB refills,
/// page faults, inclusion, write-backs).
pub fn bench_workload() -> Workload {
    Workload {
        nbench: 4,
        scale: 10_000,
        seed: 0xbe7c4,
        solo: None,
    }
}

/// A slightly larger workload for the one-shot artifact regeneration
/// printed before measurements.
pub fn render_workload() -> Workload {
    Workload {
        nbench: 8,
        scale: 2_000,
        seed: 0xbe7c4,
        solo: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_modest() {
        assert!(bench_workload().total_refs() < 100_000);
        assert!(render_workload().total_refs() < 500_000);
    }
}
