//! SweepRunner bench: the same Table 3-shaped batch executed serially
//! and through the worker pool, so the parallel speedup (and the cell
//! cache's dedup win) is measured directly.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rampage_bench::bench_workload;
use rampage_core::experiments::{Job, SweepRunner, PAPER_SIZES};
use rampage_core::{IssueRate, SystemConfig};

fn batch() -> Vec<Job> {
    let w = bench_workload();
    let mut jobs = Vec::new();
    for &rate in &[IssueRate::MHZ200, IssueRate::GHZ1, IssueRate::GHZ4] {
        for &size in &PAPER_SIZES {
            jobs.push(Job::new(SystemConfig::baseline(rate, size), w));
            jobs.push(Job::new(SystemConfig::rampage(rate, size), w));
        }
    }
    jobs
}

fn bench_runner(c: &mut Criterion) {
    let jobs = batch();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "runner bench: {} jobs per batch, {} cores available",
        jobs.len(),
        cores
    );

    let mut worker_counts = vec![1usize, 2, cores];
    worker_counts.sort_unstable();
    worker_counts.dedup();

    let mut g = c.benchmark_group("runner");
    g.sample_size(10);
    for &workers in &worker_counts {
        g.bench_with_input(
            BenchmarkId::new("cold_batch", workers),
            &workers,
            |b, &workers| {
                // A fresh runner per iteration: every cell is simulated.
                b.iter(|| {
                    let runner = SweepRunner::new(workers);
                    black_box(runner.run_batch(&jobs))
                })
            },
        );
    }
    // The warm path: every job is already cached, so this measures pure
    // cache-lookup overhead.
    let warm = SweepRunner::new(cores);
    warm.run_batch(&jobs);
    g.bench_function("warm_batch", |b| {
        b.iter(|| black_box(warm.run_batch(&jobs)))
    });
    g.finish();
}

criterion_group!(benches, bench_runner);
criterion_main!(benches);
