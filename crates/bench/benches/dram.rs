//! DRAM backend bench: per-reference simulation cost of the flat
//! analytic Direct Rambus model vs the event-driven banked backend, at
//! both fidelity-relevant unit sizes, plus the raw channel request cost
//! in isolation. This quantifies what the banked backend's extra
//! fidelity costs in simulator throughput — the trade the `--dram-backend`
//! flag exposes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rampage_bench::bench_workload;
use rampage_core::experiments::run_config;
use rampage_core::{DramKind, IssueRate, SystemConfig};
use rampage_dram::{BankedChannel, BankedConfig, Picos};

fn bench_dram(c: &mut Criterion) {
    let w = bench_workload();
    let mut g = c.benchmark_group("dram");
    g.sample_size(10);
    // Full-system cost: the same RAMpage sweep under each backend.
    for &size in &[128u64, 4096] {
        for (backend, kind) in [
            ("flat", DramKind::Rambus),
            ("banked", DramKind::banked()),
            (
                "banked_degenerate",
                DramKind::Banked(BankedConfig::flat_equivalent()),
            ),
        ] {
            let mut cfg = SystemConfig::rampage(IssueRate::GHZ1, size);
            cfg.dram = kind;
            g.bench_with_input(BenchmarkId::new(backend, size), &cfg, |b, cfg| {
                b.iter(|| black_box(run_config(cfg, &w)))
            });
        }
    }
    g.finish();

    // Raw channel cost: one million requests against the banked channel
    // alone, paper geometry, mixed row locality.
    let mut g = c.benchmark_group("dram_channel");
    g.sample_size(10);
    g.bench_function("banked_requests", |b| {
        b.iter(|| {
            let mut ch = BankedChannel::new(BankedConfig::paper());
            let mut now = Picos::ZERO;
            for i in 0u64..100_000 {
                // Alternate hits (same unit) and conflicts (stride
                // through rows of one bank) like a real miss stream.
                let addr = (i % 7) * 0x8000;
                let t = ch.request(now, addr, 1024);
                now = t.done;
            }
            black_box(ch.bus_free())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);
