//! Table 4 bench: RAMpage with context switches on misses.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rampage_bench::{bench_workload, render_workload};
use rampage_core::experiments::{run_config, table3, table4, SweepRunner};
use rampage_core::{IssueRate, SystemConfig};

fn bench_table4(c: &mut Criterion) {
    // Reduced regeneration: one fast rate where switching matters most.
    let runner = SweepRunner::new(0);
    let w = render_workload();
    let t3 = table3::run(&runner, &w, &[IssueRate::GHZ4], &[512, 1024, 2048, 4096]);
    let t4 = table4::run(&runner, &w, &t3);
    println!("{}", t4.render());

    let w = bench_workload();
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    for &size in &[1024u64, 4096] {
        g.bench_with_input(
            BenchmarkId::new("switch_on_miss", size),
            &size,
            |b, &size| {
                let cfg = SystemConfig::rampage_switching(IssueRate::GHZ4, size);
                b.iter(|| black_box(run_config(&cfg, &w)))
            },
        );
        g.bench_with_input(BenchmarkId::new("no_switch", size), &size, |b, &size| {
            let cfg = SystemConfig::rampage(IssueRate::GHZ4, size);
            b.iter(|| black_box(run_config(&cfg, &w)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
