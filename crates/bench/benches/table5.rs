//! Table 5 bench: the 2-way associative L2 with context switches.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rampage_bench::{bench_workload, render_workload};
use rampage_core::experiments::{run_config, table5, SweepRunner};
use rampage_core::{IssueRate, SystemConfig};

fn bench_table5(c: &mut Criterion) {
    let t5 = table5::run(
        &SweepRunner::new(0),
        &render_workload(),
        &[IssueRate::MHZ200, IssueRate::GHZ4],
        &[128, 256, 512, 1024, 2048, 4096],
    );
    println!("{}", t5.render());

    let w = bench_workload();
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    for &size in &[128u64, 1024, 4096] {
        g.bench_with_input(BenchmarkId::new("two_way", size), &size, |b, &size| {
            let cfg = SystemConfig::two_way(IssueRate::GHZ1, size);
            b.iter(|| black_box(run_config(&cfg, &w)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
