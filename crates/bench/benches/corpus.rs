//! Trace I/O bench: replaying a recorded corpus shard versus reading the
//! same records from the raw fixed-width Bin format (and versus pure
//! synthesis), plus the on-disk size of each. The corpus reader decodes
//! blocks on a prefetch thread, so it should beat the 9-byte-per-record
//! Bin reader on both footprint and throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rampage_trace::corpus::{record_source, CorpusReader};
use rampage_trace::io::{copy_bin, BinReader, BinWriter};
use rampage_trace::{profiles, TraceSource};
use std::path::PathBuf;

/// One benchmark's worth of records: the first Table 2 program at
/// 1/200 volume (~360 k references).
const SCALE: u64 = 200;
const SEED: u64 = 0xbe7c4;

fn drain<S: TraceSource>(mut source: S) -> u64 {
    let mut n = 0u64;
    while let Some(rec) = source.next_record() {
        black_box(rec);
        n += 1;
    }
    n
}

fn bench_corpus(c: &mut Criterion) {
    let p = &profiles::TABLE2[0];
    let dir = std::env::temp_dir().join(format!("rampage-bench-corpus-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("bench tmp dir");

    // Record the corpus shard and the equivalent raw Bin file once.
    let meta = record_source(
        &dir,
        p.name,
        &mut p.source(SCALE, SEED),
        64 * 1024,
        Some(SEED),
        Some(SCALE),
        None,
    )
    .expect("record shard");
    let shard_path = dir.join(&meta.file);
    let bin_path: PathBuf = dir.join("raw.bin");
    {
        let file = std::fs::File::create(&bin_path).expect("create bin");
        let mut w = BinWriter::new(std::io::BufWriter::new(file)).expect("bin writer");
        copy_bin(&mut p.source(SCALE, SEED), &mut w).expect("copy");
        w.finish().expect("finish bin");
    }
    let bin_bytes = std::fs::metadata(&bin_path).expect("bin meta").len();
    println!(
        "corpus bench: {} records; corpus {} bytes vs bin {bin_bytes} bytes ({:.1}x smaller)",
        meta.records,
        meta.bytes,
        bin_bytes as f64 / meta.bytes as f64
    );

    let mut g = c.benchmark_group("trace_io");
    g.sample_size(10);
    g.bench_function("corpus_replay", |b| {
        b.iter(|| {
            let reader = CorpusReader::open(&shard_path).expect("open shard");
            assert_eq!(drain(reader), meta.records);
        })
    });
    g.bench_function("bin_read", |b| {
        b.iter(|| {
            let file = std::fs::File::open(&bin_path).expect("open bin");
            let reader = BinReader::new(std::io::BufReader::new(file)).expect("bin reader");
            assert_eq!(drain(reader), meta.records);
        })
    });
    g.bench_function("synthesize", |b| {
        b.iter(|| {
            assert_eq!(drain(p.source(SCALE, SEED)), meta.records);
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_corpus);
criterion_main!(benches);
