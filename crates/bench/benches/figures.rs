//! Figures 2–5 bench: level-breakdown and overhead extraction, plus the
//! slowdown derivation, regenerated at reduced scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rampage_bench::render_workload;
use rampage_core::experiments::{fig5, figures, table3, table4, table5, SweepRunner};
use rampage_core::IssueRate;

fn bench_figures(c: &mut Criterion) {
    let runner = SweepRunner::new(0);
    let w = render_workload();
    let rates = [IssueRate::MHZ200, IssueRate::GHZ4];
    let sizes = [128u64, 512, 2048, 4096];
    let t3 = table3::run(&runner, &w, &rates, &sizes);

    println!("{}", figures::level_figure(&t3, 200, "Figure 2").render());
    println!("{}", figures::level_figure(&t3, 4000, "Figure 3").render());
    println!("{}", figures::figure4(&t3).render());

    let t4 = table4::run(&runner, &w, &t3);
    let t5 = table5::run(&runner, &w, &rates, &sizes);
    println!("{}", fig5::derive(&t4, &t5).render());

    // The extraction/derivation steps themselves (post-simulation
    // analytics — these run over cached cells, so they are cheap).
    c.bench_function("figures/level_figure", |b| {
        b.iter(|| black_box(figures::level_figure(&t3, 4000, "Figure 3")))
    });
    c.bench_function("figures/figure4", |b| {
        b.iter(|| black_box(figures::figure4(&t3)))
    });
    c.bench_function("figures/fig5_derive", |b| {
        b.iter(|| black_box(fig5::derive(&t4, &t5)))
    });
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
