//! Table 1 bench: the analytic Rambus/disk efficiency computation, plus
//! raw device timing-model throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rampage_core::experiments::table1;
use rampage_dram::{efficiency, DirectRambus, Disk, MemoryDevice, Sdram};

fn bench_table1(c: &mut Criterion) {
    // Regenerate the artifact once so `cargo bench` output contains it.
    println!("{}", table1::run().render());

    c.bench_function("table1/full_table", |b| b.iter(|| black_box(table1::run())));

    let rambus = DirectRambus::non_pipelined();
    let disk = Disk::paper_example();
    let sdram = Sdram::paper_example();
    c.bench_function("table1/rambus_transfer_time", |b| {
        b.iter(|| black_box(rambus.transfer_time(black_box(4096))))
    });
    c.bench_function("table1/efficiency_all_devices", |b| {
        b.iter(|| {
            let r = efficiency(&rambus, black_box(4096));
            let d = efficiency(&disk, black_box(4096));
            let s = efficiency(&sdram, black_box(4096));
            black_box((r, d, s))
        })
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
