//! §6.3 ablations bench: each future-work knob, measured and regenerated.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rampage_bench::{bench_workload, render_workload};
use rampage_core::experiments::{ablations, run_config, SweepRunner};
use rampage_core::{IssueRate, SystemConfig};

fn bench_ablations(c: &mut Criterion) {
    println!(
        "{}",
        ablations::run(
            &SweepRunner::new(0),
            &render_workload(),
            IssueRate::GHZ1,
            1024
        )
        .render()
    );

    let w = bench_workload();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    for knob in ablations::Knob::ALL {
        g.bench_with_input(
            BenchmarkId::new("rampage", knob.label()),
            &knob,
            |b, &knob| {
                let cfg = knob.apply(SystemConfig::rampage_switching(IssueRate::GHZ1, 1024));
                b.iter(|| black_box(run_config(&cfg, &w)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
