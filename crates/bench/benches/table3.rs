//! Table 3 bench: baseline DM L2 vs RAMpage, measuring simulator
//! throughput per configuration and regenerating a reduced Table 3.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rampage_bench::{bench_workload, render_workload};
use rampage_core::experiments::{run_config, table3, SweepRunner};
use rampage_core::{IssueRate, SystemConfig};

fn bench_table3(c: &mut Criterion) {
    // One-shot reduced regeneration (two rates, full size sweep).
    let t3 = table3::run(
        &SweepRunner::new(0),
        &render_workload(),
        &[IssueRate::MHZ200, IssueRate::GHZ4],
        &[128, 256, 512, 1024, 2048, 4096],
    );
    println!("{}", t3.render());

    let w = bench_workload();
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    for &size in &[128u64, 1024, 4096] {
        g.bench_with_input(BenchmarkId::new("baseline", size), &size, |b, &size| {
            let cfg = SystemConfig::baseline(IssueRate::GHZ1, size);
            b.iter(|| black_box(run_config(&cfg, &w)))
        });
        g.bench_with_input(BenchmarkId::new("rampage", size), &size, |b, &size| {
            let cfg = SystemConfig::rampage(IssueRate::GHZ1, size);
            b.iter(|| black_box(run_config(&cfg, &w)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
