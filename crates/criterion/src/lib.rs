//! An offline shim of the `criterion` 0.5 API surface this workspace's
//! benches use. The build environment has no crates.io access, so the
//! real crate cannot be vendored; this shim keeps `cargo bench` runnable
//! with the same bench sources.
//!
//! Measurement model: each benchmark is warmed up for a fixed number of
//! iterations, then timed over `sample_size` samples; the mean, median
//! and min of the per-iteration times are reported on stdout. No
//! statistics beyond that — enough to compare configurations, not a
//! replacement for the real criterion's analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, calling it once per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few untimed iterations.
        for _ in 0..2 {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    println!(
        "{name:<40} mean {:>12} median {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(median),
        fmt_duration(min),
        samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Finish the group (printing is immediate; this is a no-op kept for
    /// API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 20,
        };
        f(&mut b);
        report(name, &b.samples);
        self
    }
}

/// Mirror of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        g.finish();
        // 2 warm-up + 3 timed samples.
        assert_eq!(ran, 5);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(
            BenchmarkId::new("baseline", 128).to_string(),
            "baseline/128"
        );
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
