//! Trace file I/O: Dinero `.din` text and a compact binary format.
//!
//! The paper's traces came from the NMSU Tracebase archive in Dinero
//! format — one `<label> <hex-address>` pair per line, with label 0 =
//! read, 1 = write, 2 = instruction fetch. [`DinWriter`]/[`DinReader`]
//! speak that format, so synthetic traces generated here can be fed to
//! other classic cache simulators (and real `.din` traces, where still
//! obtainable, can drive this simulator).
//!
//! The binary format ([`BinWriter`]/[`BinReader`]) is a compact
//! fixed-width encoding (1 kind byte + 8 little-endian address bytes per
//! record, after an 8-byte magic header) for fast storage of large
//! synthetic traces.

use crate::record::{AccessKind, TraceRecord, VirtAddr};
use crate::stream::TraceSource;
use std::io::{self, BufRead, Read, Write};

/// Magic header identifying the binary trace format (version 1).
pub const BIN_MAGIC: [u8; 8] = *b"RAMPTRC1";

/// Errors from trace readers.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed record (message, 1-based record/line number).
    Malformed(String, u64),
    /// Binary header missing or wrong version.
    BadMagic,
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::Malformed(what, line) => {
                write!(f, "malformed trace record at line {line}: {what}")
            }
            TraceIoError::BadMagic => write!(f, "not a rampage binary trace (bad magic)"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Malformed(..) | TraceIoError::BadMagic => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn kind_to_din(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::InstrFetch => 2,
    }
}

fn din_to_kind(label: u8) -> Option<AccessKind> {
    match label {
        0 => Some(AccessKind::Read),
        1 => Some(AccessKind::Write),
        2 => Some(AccessKind::InstrFetch),
        _ => None,
    }
}

/// Writes records in Dinero `.din` text format.
///
/// Takes the writer by value; pass `&mut w` to keep using it afterwards.
///
/// ```
/// use rampage_trace::io::DinWriter;
/// use rampage_trace::TraceRecord;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut out = Vec::new();
/// let mut w = DinWriter::new(&mut out);
/// w.write(TraceRecord::fetch(0x400000))?;
/// w.write(TraceRecord::read(0x1000))?;
/// w.finish()?;
/// assert_eq!(String::from_utf8(out)?, "2 400000\n0 1000\n");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DinWriter<W> {
    out: W,
    written: u64,
}

impl<W: Write> DinWriter<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        DinWriter { out, written: 0 }
    }

    /// Append one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    pub fn write(&mut self, rec: TraceRecord) -> Result<(), TraceIoError> {
        writeln!(self.out, "{} {:x}", kind_to_din(rec.kind), rec.addr.0)?;
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush and return the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the final flush's I/O failure.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Reads Dinero `.din` text traces as a [`TraceSource`].
///
/// Blank lines are skipped; any other malformed line ends the stream at
/// the next [`DinReader::error`] check (a `TraceSource` cannot return
/// errors mid-stream, so the reader records it).
#[derive(Debug)]
pub struct DinReader<R> {
    lines: io::Lines<R>,
    line_no: u64,
    error: Option<TraceIoError>,
    name: String,
}

impl<R: BufRead> DinReader<R> {
    /// Wrap a buffered reader.
    pub fn new(input: R) -> Self {
        DinReader {
            lines: input.lines(),
            line_no: 0,
            error: None,
            name: "din".to_string(),
        }
    }

    /// The error that terminated the stream, if any.
    pub fn error(&self) -> Option<&TraceIoError> {
        self.error.as_ref()
    }

    fn parse(&mut self, line: &str) -> Result<Option<TraceRecord>, TraceIoError> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        let label = parts
            .next()
            .ok_or_else(|| TraceIoError::Malformed("missing label".into(), self.line_no))?;
        let addr = parts
            .next()
            .ok_or_else(|| TraceIoError::Malformed("missing address".into(), self.line_no))?;
        let label: u8 = label
            .parse()
            .map_err(|_| TraceIoError::Malformed(format!("bad label {label:?}"), self.line_no))?;
        let kind = din_to_kind(label).ok_or_else(|| {
            TraceIoError::Malformed(format!("unknown label {label}"), self.line_no)
        })?;
        let addr = u64::from_str_radix(addr, 16)
            .map_err(|_| TraceIoError::Malformed(format!("bad address {addr:?}"), self.line_no))?;
        Ok(Some(TraceRecord {
            addr: VirtAddr(addr),
            kind,
        }))
    }
}

impl<R: BufRead> TraceSource for DinReader<R> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.error.is_some() {
            return None;
        }
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => {
                    self.error = Some(TraceIoError::Io(e));
                    return None;
                }
            };
            self.line_no += 1;
            match self.parse(&line) {
                Ok(Some(rec)) => return Some(rec),
                Ok(None) => continue, // blank line
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Writes the compact binary format.
#[derive(Debug)]
pub struct BinWriter<W> {
    out: W,
    written: u64,
}

impl<W: Write> BinWriter<W> {
    /// Wrap a writer and emit the magic header.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing the header.
    pub fn new(mut out: W) -> Result<Self, TraceIoError> {
        out.write_all(&BIN_MAGIC)?;
        Ok(BinWriter { out, written: 0 })
    }

    /// Append one record (9 bytes).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    pub fn write(&mut self, rec: TraceRecord) -> Result<(), TraceIoError> {
        let mut buf = [0u8; 9];
        buf[0] = kind_to_din(rec.kind);
        buf[1..].copy_from_slice(&rec.addr.0.to_le_bytes());
        self.out.write_all(&buf)?;
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush and return the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the final flush's I/O failure.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Reads the compact binary format as a [`TraceSource`].
#[derive(Debug)]
pub struct BinReader<R> {
    input: R,
    record_no: u64,
    error: Option<TraceIoError>,
    name: String,
}

impl<R: Read> BinReader<R> {
    /// Wrap a reader, checking the magic header.
    ///
    /// # Errors
    ///
    /// [`TraceIoError::BadMagic`] if the header does not match, or any
    /// I/O failure reading it.
    pub fn new(mut input: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if magic != BIN_MAGIC {
            return Err(TraceIoError::BadMagic);
        }
        Ok(BinReader {
            input,
            record_no: 0,
            error: None,
            name: "bin".to_string(),
        })
    }

    /// The error that terminated the stream, if any.
    pub fn error(&self) -> Option<&TraceIoError> {
        self.error.as_ref()
    }
}

impl<R: Read> TraceSource for BinReader<R> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.error.is_some() {
            return None;
        }
        let mut buf = [0u8; 9];
        let mut filled = 0;
        while filled < buf.len() {
            match self.input.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 => return None, // clean end of trace
                Ok(0) => {
                    self.error = Some(TraceIoError::Malformed(
                        format!("truncated record ({filled} of 9 bytes)"),
                        self.record_no + 1,
                    ));
                    return None;
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.error = Some(TraceIoError::Io(e));
                    return None;
                }
            }
        }
        self.record_no += 1;
        #[cfg(feature = "fault")]
        if crate::fault::corrupts_record(self.record_no) {
            buf[0] = 0xff;
        }
        let mut addr_bytes = [0u8; 8];
        addr_bytes.copy_from_slice(&buf[1..]);
        match din_to_kind(buf[0]) {
            Some(kind) => Some(TraceRecord {
                addr: VirtAddr(u64::from_le_bytes(addr_bytes)),
                kind,
            }),
            None => {
                self.error = Some(TraceIoError::Malformed(
                    format!("unknown kind byte {}", buf[0]),
                    self.record_no,
                ));
                None
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Copy every record from `source` into `writer` (either format).
///
/// Returns the number of records copied.
///
/// # Errors
///
/// Propagates the first write failure.
pub fn copy_din<S: TraceSource, W: Write>(
    source: &mut S,
    writer: &mut DinWriter<W>,
) -> Result<u64, TraceIoError> {
    let mut n = 0;
    while let Some(rec) = source.next_record() {
        writer.write(rec)?;
        n += 1;
    }
    Ok(n)
}

/// As [`copy_din`], for the binary format.
///
/// # Errors
///
/// Propagates the first write failure.
pub fn copy_bin<S: TraceSource, W: Write>(
    source: &mut S,
    writer: &mut BinWriter<W>,
) -> Result<u64, TraceIoError> {
    let mut n = 0;
    while let Some(rec) = source.next_record() {
        writer.write(rec)?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::VecSource;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::fetch(0x0040_0000),
            TraceRecord::read(0x1000_0008),
            TraceRecord::write(0x7fff_e000),
            TraceRecord::read(0),
        ]
    }

    #[test]
    fn din_roundtrip() {
        let mut src = VecSource::new("s", sample());
        let mut w = DinWriter::new(Vec::new());
        let n = copy_din(&mut src, &mut w).unwrap();
        assert_eq!(n, 4);
        let bytes = w.finish().unwrap();
        let mut r = DinReader::new(io::BufReader::new(&bytes[..]));
        let got: Vec<_> = std::iter::from_fn(|| r.next_record()).collect();
        assert_eq!(got, sample());
        assert!(r.error().is_none());
    }

    #[test]
    fn din_format_is_classic() {
        let mut w = DinWriter::new(Vec::new());
        w.write(TraceRecord::write(0xdeadbeef)).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), "1 deadbeef\n");
    }

    #[test]
    fn din_reader_accepts_blank_lines_and_whitespace() {
        let text = "2 400000\n\n  0   1000  \n";
        let mut r = DinReader::new(io::BufReader::new(text.as_bytes()));
        assert_eq!(r.next_record(), Some(TraceRecord::fetch(0x400000)));
        assert_eq!(r.next_record(), Some(TraceRecord::read(0x1000)));
        assert_eq!(r.next_record(), None);
        assert!(r.error().is_none());
    }

    #[test]
    fn din_reader_reports_malformed_lines() {
        for bad in ["3 1000", "0 zzzz", "junk"] {
            let mut r = DinReader::new(io::BufReader::new(bad.as_bytes()));
            assert_eq!(r.next_record(), None);
            let err = r.error().expect("error recorded");
            assert!(matches!(err, TraceIoError::Malformed(_, 1)), "{err}");
        }
    }

    #[test]
    fn bin_roundtrip() {
        let mut src = VecSource::new("s", sample());
        let mut w = BinWriter::new(Vec::new()).unwrap();
        let n = copy_bin(&mut src, &mut w).unwrap();
        assert_eq!(n, 4);
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 8 + 4 * 9, "header + fixed records");
        let mut r = BinReader::new(&bytes[..]).unwrap();
        let got: Vec<_> = std::iter::from_fn(|| r.next_record()).collect();
        assert_eq!(got, sample());
        assert!(r.error().is_none());
    }

    #[test]
    fn bin_rejects_bad_magic() {
        let err = BinReader::new(&b"NOTMAGIC"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
    }

    #[test]
    fn bin_truncated_record_is_eof() {
        let mut w = BinWriter::new(Vec::new()).unwrap();
        w.write(TraceRecord::read(0x42)).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.truncate(bytes.len() - 3);
        let mut r = BinReader::new(&bytes[..]).unwrap();
        // A torn tail record reads as end-of-stream with an error noted.
        assert_eq!(r.next_record(), None);
        assert!(r.error().is_some());
    }

    /// Deterministic "arbitrary" record streams for the property tests:
    /// full 64-bit addresses, all three kinds, seeded per case.
    fn arbitrary_stream(seed: u64, len: usize) -> Vec<TraceRecord> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                let addr: u64 = rng.gen();
                match rng.gen_range(0u32..3) {
                    0 => TraceRecord::read(addr),
                    1 => TraceRecord::write(addr),
                    _ => TraceRecord::fetch(addr),
                }
            })
            .collect()
    }

    #[test]
    fn property_din_roundtrips_arbitrary_streams() {
        for (seed, len) in [(0, 0), (1, 1), (2, 7), (3, 256), (4, 1000)] {
            let records = arbitrary_stream(seed, len);
            let mut src = VecSource::new("s", records.clone());
            let mut w = DinWriter::new(Vec::new());
            assert_eq!(copy_din(&mut src, &mut w).unwrap(), len as u64);
            let bytes = w.finish().unwrap();
            let mut r = DinReader::new(io::BufReader::new(&bytes[..]));
            let got: Vec<_> = std::iter::from_fn(|| r.next_record()).collect();
            assert_eq!(got, records, "din seed {seed} len {len}");
            assert!(r.error().is_none());
        }
    }

    #[test]
    fn property_bin_roundtrips_arbitrary_streams() {
        for (seed, len) in [(10, 0), (11, 1), (12, 9), (13, 512), (14, 1000)] {
            let records = arbitrary_stream(seed, len);
            let mut src = VecSource::new("s", records.clone());
            let mut w = BinWriter::new(Vec::new()).unwrap();
            assert_eq!(copy_bin(&mut src, &mut w).unwrap(), len as u64);
            let bytes = w.finish().unwrap();
            assert_eq!(bytes.len(), 8 + 9 * len, "bin is fixed-width");
            let mut r = BinReader::new(&bytes[..]).unwrap();
            let got: Vec<_> = std::iter::from_fn(|| r.next_record()).collect();
            assert_eq!(got, records, "bin seed {seed} len {len}");
            assert!(r.error().is_none());
        }
    }

    #[test]
    fn property_bin_truncation_anywhere_is_a_typed_error() {
        let records = arbitrary_stream(20, 16);
        let mut src = VecSource::new("s", records.clone());
        let mut w = BinWriter::new(Vec::new()).unwrap();
        copy_bin(&mut src, &mut w).unwrap();
        let bytes = w.finish().unwrap();
        // Cut at every byte position that tears a record (not at a
        // record boundary and not inside the magic).
        for cut in 9..bytes.len() {
            let whole_records = (cut - 8) / 9;
            let mut r = BinReader::new(&bytes[..cut]).unwrap();
            let got: Vec<_> = std::iter::from_fn(|| r.next_record()).collect();
            assert_eq!(got, records[..whole_records], "cut {cut}");
            if (cut - 8) % 9 == 0 {
                assert!(r.error().is_none(), "clean boundary at {cut}");
            } else {
                assert!(
                    matches!(r.error(), Some(TraceIoError::Malformed(_, _))),
                    "torn record at {cut} must surface an error"
                );
            }
        }
    }

    #[test]
    fn property_bin_garbled_kind_byte_is_a_typed_error() {
        let records = arbitrary_stream(21, 8);
        let mut src = VecSource::new("s", records.clone());
        let mut w = BinWriter::new(Vec::new()).unwrap();
        copy_bin(&mut src, &mut w).unwrap();
        let mut bytes = w.finish().unwrap();
        let victim = 3usize; // garble record 4's kind byte
        bytes[8 + victim * 9] = 0x77;
        let mut r = BinReader::new(&bytes[..]).unwrap();
        let got: Vec<_> = std::iter::from_fn(|| r.next_record()).collect();
        assert_eq!(got, records[..victim], "stream stops before the bad record");
        let err = r.error().expect("error recorded");
        assert!(
            matches!(err, TraceIoError::Malformed(_, n) if *n == victim as u64 + 1),
            "{err}"
        );
    }

    #[test]
    fn property_din_garbled_line_is_a_typed_error() {
        let records = arbitrary_stream(22, 12);
        let mut src = VecSource::new("s", records.clone());
        let mut w = DinWriter::new(Vec::new());
        copy_din(&mut src, &mut w).unwrap();
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        let mut lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let victim = 5usize;
        lines[victim] = "9 nothex".to_string();
        let garbled = lines.join("\n");
        let mut r = DinReader::new(io::BufReader::new(garbled.as_bytes()));
        let got: Vec<_> = std::iter::from_fn(|| r.next_record()).collect();
        assert_eq!(got, records[..victim]);
        let err = r.error().expect("error recorded");
        assert!(
            matches!(err, TraceIoError::Malformed(_, n) if *n == victim as u64 + 1),
            "{err}"
        );
    }

    #[test]
    fn error_display_is_useful() {
        let e = TraceIoError::Malformed("bad label \"9\"".into(), 7);
        assert_eq!(
            e.to_string(),
            "malformed trace record at line 7: bad label \"9\""
        );
        assert_eq!(
            TraceIoError::BadMagic.to_string(),
            "not a rampage binary trace (bad magic)"
        );
    }
}
