//! The paper's benchmark suite (Table 2), rebuilt synthetically.
//!
//! Table 2 of the paper lists 18 traces (SPEC92 programs and Unix
//! utilities) with their instruction-fetch and total reference counts —
//! 1.1 billion references in all. The traces themselves are gone; each
//! [`Profile`] here carries the Table 2 numbers verbatim plus a workload
//! class whose generator parameters reproduce the program's locality
//! structure (see `DESIGN.md` §4 for the substitution argument).
//!
//! [`standard_suite`] builds all 18 at a chosen scale; the experiments in
//! `rampage-core` interleave them with a 500 000-reference quantum exactly
//! as §4.2 of the paper describes.

use crate::stream::BoundedSource;
use crate::synth::{
    layout, BenchmarkSynth, CodeGen, HotCold, MixSpec, PointerChase, SequentialSweep, StackSim,
    WeightedData,
};

/// Broad locality classes covering the Table 2 programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// SPECfp92 streaming codes (`swm256`, `su2cor`, `nasa7`, …): long
    /// unit-stride sweeps over large arrays, small loopy code.
    FpStream {
        /// Total array footprint in KiB.
        array_kb: u64,
        /// Sweep stride in bytes (8 = double-precision unit stride).
        stride: u64,
    },
    /// SPECfp92 stencil/relaxation codes (`hydro2d`, `ear`, `alvinn`):
    /// sweeps plus a hot coefficient region.
    FpLoop {
        /// Swept array footprint in KiB.
        array_kb: u64,
        /// Hot (reused) region in KiB.
        hot_kb: u64,
    },
    /// Branchy integer utilities (`awk`, `sed`, `yacc`, `tex`, `gcc`,
    /// `cexp`): hot/cold data, stack traffic, pointer-linked structures,
    /// larger code working sets.
    IntBranchy {
        /// Hot data region in KiB.
        hot_kb: u64,
        /// Cold data region in KiB.
        cold_kb: u64,
        /// Nodes in the pointer-chased pool (64-byte nodes).
        chase_nodes: usize,
    },
    /// `compress`/`uncompress`: sequential input/output streaming plus
    /// random hash-table probes.
    Stream {
        /// Streamed buffer in KiB.
        buffer_kb: u64,
        /// Hash-table region in KiB (randomly probed).
        table_kb: u64,
    },
    /// `ora`-style ray tracing / `wave5` particle codes: pointer-heavy
    /// traversal over a large pool with a modest hot set.
    PointerHeavy {
        /// Node-pool footprint in KiB (64-byte nodes).
        pool_kb: u64,
        /// Hot region in KiB.
        hot_kb: u64,
    },
}

/// One benchmark of the paper's Table 2.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Program name as printed in Table 2 (`gcc` restored for the OCR'd "SC").
    pub name: &'static str,
    /// Table 2 description.
    pub description: &'static str,
    /// Millions of instruction fetches (Table 2).
    pub instr_millions: f64,
    /// Millions of total references (Table 2).
    pub refs_millions: f64,
    /// Code working set in KiB (chosen per class; not in Table 2).
    pub code_kb: u64,
    /// Fraction of data references that are writes.
    pub write_frac: f64,
    /// Locality class and its parameters.
    pub class: WorkloadClass,
}

impl Profile {
    /// Instruction-fetch fraction implied by Table 2.
    pub fn ifetch_frac(&self) -> f64 {
        self.instr_millions / self.refs_millions
    }

    /// Total references this profile contributes at `1/scale` of the
    /// paper's volume (scale = 1 reproduces Table 2 exactly).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn scaled_refs(&self, scale: u64) -> u64 {
        assert!(scale > 0, "scale divides the trace volume");
        ((self.refs_millions * 1e6) as u64 / scale).max(1)
    }

    /// Build the synthetic trace source for this profile.
    ///
    /// `scale` divides the Table 2 reference count (e.g. 100 → 1/100 of
    /// the paper's volume); `seed` perturbs all generator seeds so suites
    /// can be re-rolled while staying deterministic.
    pub fn source(&self, scale: u64, seed: u64) -> BoundedSource<BenchmarkSynth> {
        let s = seed ^ fxhash(self.name);
        let code = CodeGen::new(
            layout::CODE_BASE,
            self.code_kb * 1024,
            6,
            self.p_loop(),
            self.p_call(),
            s,
        );
        let data = self.data_generators(s);
        let bench = BenchmarkSynth::new(
            self.name,
            MixSpec::new(self.ifetch_frac(), self.write_frac),
            code,
            data,
            s.wrapping_mul(0x9e37_79b9),
        );
        BoundedSource::new(bench, self.scaled_refs(scale))
    }

    fn p_loop(&self) -> f64 {
        match self.class {
            WorkloadClass::FpStream { .. } | WorkloadClass::FpLoop { .. } => 0.65,
            WorkloadClass::Stream { .. } => 0.55,
            WorkloadClass::PointerHeavy { .. } => 0.45,
            WorkloadClass::IntBranchy { .. } => 0.30,
        }
    }

    fn p_call(&self) -> f64 {
        match self.class {
            WorkloadClass::FpStream { .. } | WorkloadClass::FpLoop { .. } => 0.02,
            WorkloadClass::Stream { .. } => 0.05,
            WorkloadClass::PointerHeavy { .. } => 0.10,
            WorkloadClass::IntBranchy { .. } => 0.15,
        }
    }

    /// Bytes of the always-hot (L1-resident) data tier. Real programs
    /// concentrate most data references on a few KB of locals, globals
    /// and top-of-structure fields; without this tier the synthetic L1
    /// miss ratios come out an order of magnitude above SPEC92's.
    const L1_HOT_BYTES: u64 = 8 * 1024;

    fn data_generators(&self, seed: u64) -> Vec<WeightedData> {
        // Common tier: a small hot set with occasional excursions into a
        // `warm_kb`-sized (typically L2-resident) region.
        let hot = |warm_kb: u64, p_hot: f64, seed: u64| {
            HotCold::new(
                layout::GLOBAL_BASE,
                Self::L1_HOT_BYTES,
                layout::GLOBAL_BASE + (1 << 24),
                warm_kb * 1024,
                p_hot,
                8,
                seed,
            )
        };
        match self.class {
            WorkloadClass::FpStream { array_kb, stride } => vec![
                WeightedData::new(
                    SequentialSweep::new(layout::HEAP_BASE, array_kb * 1024, stride),
                    2.5,
                ),
                WeightedData::new(hot(128, 0.95, seed ^ 1), 6.5),
                WeightedData::new(StackSim::new(layout::STACK_TOP, 16 * 1024, seed ^ 2), 1.0),
            ],
            WorkloadClass::FpLoop { array_kb, hot_kb } => vec![
                WeightedData::new(
                    SequentialSweep::new(layout::HEAP_BASE, array_kb * 1024, 8),
                    2.0,
                ),
                WeightedData::new(hot(hot_kb, 0.93, seed ^ 3), 7.0),
                WeightedData::new(StackSim::new(layout::STACK_TOP, 32 * 1024, seed ^ 4), 1.0),
            ],
            WorkloadClass::IntBranchy {
                hot_kb: _,
                cold_kb,
                chase_nodes,
            } => vec![
                WeightedData::new(hot(cold_kb, 0.95, seed ^ 5), 5.0),
                WeightedData::new(
                    PointerChase::new(layout::HEAP_BASE, chase_nodes, 64, seed ^ 6),
                    1.0,
                ),
                WeightedData::new(StackSim::new(layout::STACK_TOP, 64 * 1024, seed ^ 7), 3.0),
            ],
            WorkloadClass::Stream {
                buffer_kb,
                table_kb,
            } => vec![
                WeightedData::new(
                    SequentialSweep::new(layout::HEAP_BASE, buffer_kb * 1024, 1),
                    3.0,
                ),
                WeightedData::new(hot(table_kb, 0.90, seed ^ 8), 3.0),
            ],
            WorkloadClass::PointerHeavy { pool_kb, hot_kb } => vec![
                WeightedData::new(
                    PointerChase::new(
                        layout::HEAP_BASE,
                        (pool_kb * 1024 / 64) as usize,
                        64,
                        seed ^ 9,
                    ),
                    1.5,
                ),
                WeightedData::new(hot(8 * hot_kb, 0.93, seed ^ 10), 5.5),
                WeightedData::new(StackSim::new(layout::STACK_TOP, 32 * 1024, seed ^ 11), 2.0),
            ],
        }
    }
}

/// Tiny deterministic string hash for seeding (FNV-1a).
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The 18 programs of the paper's Table 2, with its reference counts.
pub const TABLE2: [Profile; 18] = [
    Profile {
        name: "alvinn",
        description: "neural net training (fp92)",
        instr_millions: 59.0,
        refs_millions: 72.8,
        code_kb: 12,
        write_frac: 0.30,
        class: WorkloadClass::FpLoop {
            array_kb: 1536,
            hot_kb: 96,
        },
    },
    Profile {
        name: "awk",
        description: "unix text utility",
        instr_millions: 62.8,
        refs_millions: 86.4,
        code_kb: 64,
        write_frac: 0.30,
        class: WorkloadClass::IntBranchy {
            hot_kb: 64,
            cold_kb: 1024,
            chase_nodes: 1024,
        },
    },
    Profile {
        name: "cexp",
        description: "expression evaluator (int92)",
        instr_millions: 28.5,
        refs_millions: 37.5,
        code_kb: 48,
        write_frac: 0.25,
        class: WorkloadClass::IntBranchy {
            hot_kb: 32,
            cold_kb: 512,
            chase_nodes: 512,
        },
    },
    Profile {
        name: "compress",
        description: "file compression (int92)",
        instr_millions: 8.0,
        refs_millions: 10.5,
        code_kb: 16,
        write_frac: 0.35,
        class: WorkloadClass::Stream {
            buffer_kb: 2048,
            table_kb: 512,
        },
    },
    Profile {
        name: "ear",
        description: "human ear simulator (fp92)",
        instr_millions: 65.0,
        refs_millions: 80.4,
        code_kb: 24,
        write_frac: 0.30,
        class: WorkloadClass::FpLoop {
            array_kb: 2048,
            hot_kb: 128,
        },
    },
    Profile {
        name: "gcc",
        description: "C compiler (int92)",
        instr_millions: 78.8,
        refs_millions: 100.0,
        code_kb: 128,
        write_frac: 0.30,
        class: WorkloadClass::IntBranchy {
            hot_kb: 128,
            cold_kb: 3072,
            chase_nodes: 4096,
        },
    },
    Profile {
        name: "hydro2d",
        description: "physics computation (fp92)",
        instr_millions: 8.2,
        refs_millions: 11.0,
        code_kb: 20,
        write_frac: 0.30,
        class: WorkloadClass::FpLoop {
            array_kb: 3072,
            hot_kb: 64,
        },
    },
    Profile {
        name: "mdljdp2",
        description: "solves motion eqns (fp92)",
        instr_millions: 65.0,
        refs_millions: 84.2,
        code_kb: 16,
        write_frac: 0.25,
        class: WorkloadClass::FpStream {
            array_kb: 2048,
            stride: 8,
        },
    },
    Profile {
        name: "mdljsp2",
        description: "solves motion eqns (fp92)",
        instr_millions: 65.0,
        refs_millions: 77.0,
        code_kb: 16,
        write_frac: 0.25,
        class: WorkloadClass::FpStream {
            array_kb: 2048,
            stride: 4,
        },
    },
    Profile {
        name: "nasa7",
        description: "NASA applications (fp92)",
        instr_millions: 65.0,
        refs_millions: 99.7,
        code_kb: 32,
        write_frac: 0.30,
        class: WorkloadClass::FpStream {
            array_kb: 4096,
            stride: 8,
        },
    },
    Profile {
        name: "ora",
        description: "ray tracing (fp92)",
        instr_millions: 65.0,
        refs_millions: 82.9,
        code_kb: 24,
        write_frac: 0.20,
        class: WorkloadClass::PointerHeavy {
            pool_kb: 128,
            hot_kb: 64,
        },
    },
    Profile {
        name: "sed",
        description: "unix text utility",
        instr_millions: 7.7,
        refs_millions: 9.8,
        code_kb: 40,
        write_frac: 0.30,
        class: WorkloadClass::IntBranchy {
            hot_kb: 48,
            cold_kb: 768,
            chase_nodes: 512,
        },
    },
    Profile {
        name: "su2cor",
        description: "physics computation (fp92)",
        instr_millions: 65.0,
        refs_millions: 88.8,
        code_kb: 28,
        write_frac: 0.30,
        class: WorkloadClass::FpStream {
            array_kb: 3072,
            stride: 8,
        },
    },
    Profile {
        name: "swm256",
        description: "physics computation (fp92)",
        instr_millions: 65.0,
        refs_millions: 87.4,
        code_kb: 16,
        write_frac: 0.30,
        class: WorkloadClass::FpStream {
            array_kb: 4096,
            stride: 8,
        },
    },
    Profile {
        name: "tex",
        description: "unix text utility",
        instr_millions: 50.3,
        refs_millions: 66.8,
        code_kb: 96,
        write_frac: 0.30,
        class: WorkloadClass::IntBranchy {
            hot_kb: 96,
            cold_kb: 2048,
            chase_nodes: 2048,
        },
    },
    Profile {
        name: "uncompress",
        description: "file decompression (int92)",
        instr_millions: 5.7,
        refs_millions: 7.5,
        code_kb: 16,
        write_frac: 0.35,
        class: WorkloadClass::Stream {
            buffer_kb: 2048,
            table_kb: 512,
        },
    },
    Profile {
        name: "wave5",
        description: "solves particle equations",
        instr_millions: 65.0,
        refs_millions: 78.3,
        code_kb: 32,
        write_frac: 0.30,
        class: WorkloadClass::PointerHeavy {
            pool_kb: 256,
            hot_kb: 128,
        },
    },
    Profile {
        name: "yacc",
        description: "unix text utility",
        instr_millions: 9.7,
        refs_millions: 12.1,
        code_kb: 56,
        write_frac: 0.30,
        class: WorkloadClass::IntBranchy {
            hot_kb: 48,
            cold_kb: 768,
            chase_nodes: 1024,
        },
    },
];

/// Total references in Table 2, in millions (≈ 1.1 billion references).
pub fn table2_total_refs_millions() -> f64 {
    TABLE2.iter().map(|p| p.refs_millions).sum()
}

/// Build the full 18-program suite at `1/scale` of the paper's volume.
///
/// The returned sources are in Table 2 order; feed them to an
/// [`Interleaver`](crate::Interleaver) with a 500 000-reference quantum to
/// reproduce the paper's multiprogrammed workload.
pub fn standard_suite(scale: u64, seed: u64) -> Vec<BoundedSource<BenchmarkSynth>> {
    TABLE2.iter().map(|p| p.source(scale, seed)).collect()
}

/// A reduced suite (first `n` programs) for fast tests and benches.
pub fn small_suite(n: usize, scale: u64, seed: u64) -> Vec<BoundedSource<BenchmarkSynth>> {
    TABLE2
        .iter()
        .take(n)
        .map(|p| p.source(scale, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSource;

    #[test]
    fn table2_has_18_programs_totalling_1_1_billion() {
        assert_eq!(TABLE2.len(), 18);
        let total = table2_total_refs_millions();
        assert!(
            (1090.0..1100.0).contains(&total),
            "total {total} Mrefs should be ~1.1 billion"
        );
    }

    #[test]
    fn ifetch_fractions_are_sane() {
        for p in &TABLE2 {
            let f = p.ifetch_frac();
            assert!(
                (0.5..1.0).contains(&f),
                "{}: ifetch fraction {f} out of range",
                p.name
            );
        }
    }

    #[test]
    fn scaled_refs_divides_volume() {
        let p = &TABLE2[0];
        assert_eq!(p.scaled_refs(1), 72_800_000);
        assert_eq!(p.scaled_refs(100), 728_000);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = TABLE2.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn sources_are_bounded_and_deterministic() {
        let mut a = TABLE2[3].source(10_000, 1);
        let mut b = TABLE2[3].source(10_000, 1);
        let mut n = 0u64;
        loop {
            let (ra, rb) = (a.next_record(), b.next_record());
            assert_eq!(ra, rb);
            if ra.is_none() {
                break;
            }
            n += 1;
        }
        assert_eq!(n, TABLE2[3].scaled_refs(10_000));
    }

    #[test]
    fn suite_builders() {
        assert_eq!(standard_suite(100_000, 0).len(), 18);
        assert_eq!(small_suite(4, 100_000, 0).len(), 4);
    }

    #[test]
    fn mix_tracks_table2_fraction() {
        let p = &TABLE2[5]; // gcc, ifetch 0.788
        let mut s = p.source(1000, 3);
        let mut ifetch = 0u64;
        let mut total = 0u64;
        while let Some(r) = s.next_record() {
            if r.kind == crate::AccessKind::InstrFetch {
                ifetch += 1;
            }
            total += 1;
            if total == 50_000 {
                break;
            }
        }
        let f = ifetch as f64 / total as f64;
        let want = p.ifetch_frac();
        assert!(
            (f - want).abs() < 0.02,
            "gcc ifetch fraction {f} vs Table 2 {want}"
        );
    }
}
