//! Round-robin interleaving of traces into a multiprogrammed workload.

use crate::record::TraceRecord;
use crate::stream::TraceSource;

/// Index of a process (trace) within an [`Interleaver`] or the simulator's
/// process table. Doubles as the source of the ASID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub usize);

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Why an [`Interleaver`] could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterleaveError {
    /// No traces were supplied — there is nothing to schedule.
    NoSources,
    /// The reference quantum is zero, so no process could ever run.
    ZeroQuantum,
}

impl std::fmt::Display for InterleaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterleaveError::NoSources => {
                write!(f, "interleaver needs at least one trace source")
            }
            InterleaveError::ZeroQuantum => {
                write!(
                    f,
                    "interleaver quantum must be positive (the paper uses 500000 references)"
                )
            }
        }
    }
}

impl std::error::Error for InterleaveError {}

/// What the interleaver hands out next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleEvent {
    /// The next reference of the running process.
    Record {
        /// Which process issued it.
        pid: ProcessId,
        /// The reference.
        record: TraceRecord,
    },
    /// The quantum expired (or the running trace ended) and control moved
    /// from `from` to `to`. The simulator charges context-switch cost here.
    Switch {
        /// Process that was running.
        from: ProcessId,
        /// Process about to run.
        to: ProcessId,
    },
    /// Every trace is exhausted.
    Finished,
}

/// Interleaves traces round-robin with a fixed reference quantum.
///
/// This reproduces the paper's workload construction (§4.2): "traces were
/// interleaved, switching to a different trace every 500,000 references, to
/// simulate a multiprogramming workload."
///
/// A [`Switch`](ScheduleEvent::Switch) event is emitted at each quantum
/// boundary (and when a trace runs dry), so a consumer can charge
/// context-switch costs; when only one live trace remains no further
/// switches are reported.
pub struct Interleaver {
    sources: Vec<Box<dyn TraceSource + Send>>,
    live: Vec<bool>,
    quantum: u64,
    current: usize,
    used_in_quantum: u64,
    live_count: usize,
    total_yielded: u64,
}

impl std::fmt::Debug for Interleaver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interleaver")
            .field("processes", &self.sources.len())
            .field("live", &self.live_count)
            .field("quantum", &self.quantum)
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

impl Interleaver {
    /// Create an interleaver over `sources` with the given reference
    /// quantum (the paper uses 500 000).
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or `quantum` is zero; use
    /// [`try_new`](Self::try_new) to handle those as errors.
    pub fn new<S>(sources: Vec<S>, quantum: u64) -> Self
    where
        S: TraceSource + Send + 'static,
    {
        match Self::try_new(sources, quantum) {
            Ok(il) => il,
            Err(e) => panic!("interleaver construction: {e}"),
        }
    }

    /// As [`new`](Self::new), reporting an empty source list or a zero
    /// quantum as an [`InterleaveError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`InterleaveError::NoSources`] if `sources` is empty;
    /// [`InterleaveError::ZeroQuantum`] if `quantum` is zero.
    pub fn try_new<S>(sources: Vec<S>, quantum: u64) -> Result<Self, InterleaveError>
    where
        S: TraceSource + Send + 'static,
    {
        if sources.is_empty() {
            return Err(InterleaveError::NoSources);
        }
        if quantum == 0 {
            return Err(InterleaveError::ZeroQuantum);
        }
        let n = sources.len();
        Ok(Interleaver {
            sources: sources
                .into_iter()
                .map(|s| Box::new(s) as Box<dyn TraceSource + Send>)
                .collect(),
            live: vec![true; n],
            quantum,
            current: 0,
            used_in_quantum: 0,
            live_count: n,
            total_yielded: 0,
        })
    }

    /// Process currently scheduled.
    pub fn current(&self) -> ProcessId {
        ProcessId(self.current)
    }

    /// Number of traces not yet exhausted.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Total records handed out so far.
    pub fn total_yielded(&self) -> u64 {
        self.total_yielded
    }

    fn next_live_after(&self, from: usize) -> Option<usize> {
        let n = self.sources.len();
        (1..=n).map(|d| (from + d) % n).find(|&i| self.live[i])
    }

    /// Produce the next schedule event.
    pub fn next_event(&mut self) -> ScheduleEvent {
        {
            if self.live_count == 0 {
                return ScheduleEvent::Finished;
            }
            if !self.live[self.current] {
                // Current died earlier (only at construction edge cases).
                self.current = match self.next_live_after(self.current) {
                    Some(i) => i,
                    None => return ScheduleEvent::Finished,
                };
                self.used_in_quantum = 0;
            }
            if self.used_in_quantum >= self.quantum {
                self.used_in_quantum = 0;
                if let Some(next) = self.next_live_after(self.current) {
                    if next != self.current {
                        let from = ProcessId(self.current);
                        self.current = next;
                        return ScheduleEvent::Switch {
                            from,
                            to: ProcessId(next),
                        };
                    }
                }
                // Single live process: keep running, no switch events.
            }
            match self.sources[self.current].next_record() {
                Some(record) => {
                    self.used_in_quantum += 1;
                    self.total_yielded += 1;
                    ScheduleEvent::Record {
                        pid: ProcessId(self.current),
                        record,
                    }
                }
                None => {
                    self.live[self.current] = false;
                    self.live_count -= 1;
                    if let Some(next) = self.next_live_after(self.current) {
                        let from = ProcessId(self.current);
                        self.current = next;
                        self.used_in_quantum = 0;
                        return ScheduleEvent::Switch {
                            from,
                            to: ProcessId(next),
                        };
                    }
                    ScheduleEvent::Finished
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::VecSource;

    fn src(name: &str, n: usize, tag: u64) -> VecSource {
        VecSource::new(
            name,
            (0..n)
                .map(|i| TraceRecord::fetch(tag * 0x1000 + i as u64 * 4))
                .collect(),
        )
    }

    #[test]
    fn round_robin_respects_quantum() {
        let mut il = Interleaver::new(vec![src("a", 10, 1), src("b", 10, 2)], 3);
        let mut order = Vec::new();
        loop {
            match il.next_event() {
                ScheduleEvent::Record { pid, .. } => order.push(pid.0),
                ScheduleEvent::Switch { .. } => {}
                ScheduleEvent::Finished => break,
            }
        }
        assert_eq!(order.len(), 20);
        assert_eq!(&order[0..3], &[0, 0, 0]);
        assert_eq!(&order[3..6], &[1, 1, 1]);
        assert_eq!(&order[6..9], &[0, 0, 0]);
    }

    #[test]
    fn switch_events_at_quantum_boundaries() {
        let mut il = Interleaver::new(vec![src("a", 4, 1), src("b", 4, 2)], 2);
        let mut switches = 0;
        loop {
            match il.next_event() {
                ScheduleEvent::Switch { from, to } => {
                    switches += 1;
                    assert_ne!(from, to);
                }
                ScheduleEvent::Finished => break,
                _ => {}
            }
        }
        // a(2) →switch→ b(2) →switch→ a(2) →switch→ b(2) →switch→
        // a(discovers empty, dies) →switch→ b(discovers empty) → Finished.
        // Exhaustion is only discovered when a trace returns None, so the
        // two quantum switches after the traces' last records still happen.
        assert_eq!(switches, 5);
    }

    #[test]
    fn single_process_never_switches() {
        let mut il = Interleaver::new(vec![src("a", 7, 1)], 2);
        let mut recs = 0;
        loop {
            match il.next_event() {
                ScheduleEvent::Record { .. } => recs += 1,
                ScheduleEvent::Switch { .. } => panic!("no switches expected"),
                ScheduleEvent::Finished => break,
            }
        }
        assert_eq!(recs, 7);
    }

    #[test]
    fn uneven_traces_drain_completely() {
        let mut il = Interleaver::new(vec![src("a", 1, 1), src("b", 9, 2), src("c", 5, 3)], 4);
        let mut per = [0usize; 3];
        loop {
            match il.next_event() {
                ScheduleEvent::Record { pid, .. } => per[pid.0] += 1,
                ScheduleEvent::Finished => break,
                _ => {}
            }
        }
        assert_eq!(per, [1, 9, 5]);
        assert_eq!(il.total_yielded(), 15);
        assert_eq!(il.live_count(), 0);
    }

    #[test]
    fn try_new_reports_bad_inputs() {
        let empty: Vec<VecSource> = Vec::new();
        assert_eq!(
            Interleaver::try_new(empty, 5).err(),
            Some(InterleaveError::NoSources)
        );
        assert_eq!(
            Interleaver::try_new(vec![src("a", 1, 1)], 0).err(),
            Some(InterleaveError::ZeroQuantum)
        );
        assert!(Interleaver::try_new(vec![src("a", 1, 1)], 5).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn new_panics_on_empty_sources() {
        let empty: Vec<VecSource> = Vec::new();
        let _ = Interleaver::new(empty, 5);
    }

    #[test]
    fn finished_is_terminal() {
        let mut il = Interleaver::new(vec![src("a", 1, 1)], 5);
        let _ = il.next_event();
        assert_eq!(il.next_event(), ScheduleEvent::Finished);
        assert_eq!(il.next_event(), ScheduleEvent::Finished);
    }
}
