//! Deterministic fault injection for trace decode (behind the `fault`
//! feature — test builds only).
//!
//! The robustness suite uses this to prove that a corrupt record deep in
//! a stream surfaces as a recorded [`TraceIoError`](crate::io::TraceIoError)
//! — the stream ends, the error is inspectable, and nothing panics.
//!
//! Injection state is process-global; tests that arm it must serialize
//! with each other and [`disarm`] when done.

use std::sync::atomic::{AtomicU64, Ordering};

/// 1-based record number whose kind byte the next binary reader will see
/// flipped to an invalid value; 0 = disarmed.
static CORRUPT_RECORD_AT: AtomicU64 = AtomicU64::new(0);

/// Arm a single-record corruption: record `record_no` (1-based) of any
/// subsequently decoded binary trace reads back an invalid kind byte.
pub fn arm_corrupt_record(record_no: u64) {
    CORRUPT_RECORD_AT.store(record_no, Ordering::SeqCst);
}

/// Clear all armed trace faults.
pub fn disarm() {
    CORRUPT_RECORD_AT.store(0, Ordering::SeqCst);
}

/// Whether the given record number should decode as corrupt (one-shot:
/// the armed fault stays until [`disarm`], matching every reader at that
/// record number, which keeps the injection deterministic per stream).
pub(crate) fn corrupts_record(record_no: u64) -> bool {
    let armed = CORRUPT_RECORD_AT.load(Ordering::SeqCst);
    armed != 0 && armed == record_no
}
