//! Deterministic fault injection for trace decode (behind the `fault`
//! feature — test builds only).
//!
//! The robustness suite uses this to prove that a corrupt record deep in
//! a stream surfaces as a recorded [`TraceIoError`](crate::io::TraceIoError)
//! — the stream ends, the error is inspectable, and nothing panics.
//!
//! Injection state is process-global; tests that arm it must serialize
//! with each other and [`disarm`] when done.

use std::sync::atomic::{AtomicU64, Ordering};

/// 1-based record number whose kind byte the next binary reader will see
/// flipped to an invalid value; 0 = disarmed.
static CORRUPT_RECORD_AT: AtomicU64 = AtomicU64::new(0);

/// 0-based corpus block number whose payload every
/// [`CorpusReader`](crate::corpus::CorpusReader) will see bit-flipped
/// before checksum verification; `u64::MAX` = disarmed.
static CORRUPT_BLOCK_AT: AtomicU64 = AtomicU64::new(u64::MAX);

/// Arm a single-record corruption: record `record_no` (1-based) of any
/// subsequently decoded binary trace reads back an invalid kind byte.
pub fn arm_corrupt_record(record_no: u64) {
    CORRUPT_RECORD_AT.store(record_no, Ordering::SeqCst);
}

/// Arm a corpus block corruption: block `block_no` (0-based) of any
/// subsequently read shard decodes with a flipped payload byte, tripping
/// its checksum so the reader's quarantine-and-skip path runs.
pub fn arm_corrupt_block(block_no: u64) {
    CORRUPT_BLOCK_AT.store(block_no, Ordering::SeqCst);
}

/// Clear all armed trace faults.
pub fn disarm() {
    CORRUPT_RECORD_AT.store(0, Ordering::SeqCst);
    CORRUPT_BLOCK_AT.store(u64::MAX, Ordering::SeqCst);
}

/// Whether the given record number should decode as corrupt (one-shot:
/// the armed fault stays until [`disarm`], matching every reader at that
/// record number, which keeps the injection deterministic per stream).
pub(crate) fn corrupts_record(record_no: u64) -> bool {
    let armed = CORRUPT_RECORD_AT.load(Ordering::SeqCst);
    armed != 0 && armed == record_no
}

/// Whether the given corpus block number should read back corrupt (stays
/// armed until [`disarm`], matching every reader at that block number).
pub(crate) fn corrupts_block(block_no: u64) -> bool {
    CORRUPT_BLOCK_AT.load(Ordering::SeqCst) == block_no
}
