//! Sources of trace records.

use crate::record::TraceRecord;

/// A stream of trace records.
///
/// This is the interface between workload generation and the simulator: the
/// engine pulls records one at a time until the source is exhausted. All
/// generators in [`crate::synth`] implement it, as does [`VecSource`] for
/// pre-recorded traces.
///
/// Implementations must be deterministic for a given construction (seeded
/// RNGs), so that experiments are exactly reproducible.
pub trait TraceSource {
    /// Produce the next record, or `None` when the trace is exhausted.
    fn next_record(&mut self) -> Option<TraceRecord>;

    /// A short human-readable name for reports (e.g. the benchmark name).
    fn name(&self) -> &str {
        "trace"
    }
}

/// A trace source backed by an in-memory vector of records.
///
/// Useful in tests and for replaying captured reference sequences.
///
/// ```
/// use rampage_trace::{TraceRecord, TraceSource, VecSource};
/// let mut s = VecSource::new("tiny", vec![TraceRecord::fetch(0), TraceRecord::read(64)]);
/// assert_eq!(s.next_record(), Some(TraceRecord::fetch(0)));
/// assert_eq!(s.next_record(), Some(TraceRecord::read(64)));
/// assert_eq!(s.next_record(), None);
/// ```
#[derive(Debug, Clone)]
pub struct VecSource {
    name: String,
    records: Vec<TraceRecord>,
    pos: usize,
}

impl VecSource {
    /// Create a source that yields `records` in order.
    pub fn new(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        VecSource {
            name: name.into(),
            records,
            pos: 0,
        }
    }

    /// Number of records remaining.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.pos
    }
}

impl TraceSource for VecSource {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let r = self.records.get(self.pos).copied();
        if r.is_some() {
            self.pos += 1;
        }
        r
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Caps an inner source at a fixed number of records.
///
/// Synthetic generators are infinite; experiments bound them to the
/// per-benchmark reference counts of the paper's Table 2 (scaled).
pub struct BoundedSource<S> {
    inner: S,
    remaining: u64,
}

impl<S: TraceSource> BoundedSource<S> {
    /// Wrap `inner`, yielding at most `limit` records.
    pub fn new(inner: S, limit: u64) -> Self {
        BoundedSource {
            inner,
            remaining: limit,
        }
    }

    /// Records still allowed to flow.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Consume the wrapper, returning the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSource> TraceSource for BoundedSource<S> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        match self.inner.next_record() {
            Some(r) => {
                self.remaining -= 1;
                Some(r)
            }
            None => {
                self.remaining = 0;
                None
            }
        }
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        (**self).next_record()
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three() -> VecSource {
        VecSource::new(
            "three",
            vec![
                TraceRecord::fetch(0),
                TraceRecord::fetch(4),
                TraceRecord::fetch(8),
            ],
        )
    }

    #[test]
    fn vec_source_yields_in_order_then_none() {
        let mut s = three();
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.next_record().unwrap().addr.0, 0);
        assert_eq!(s.next_record().unwrap().addr.0, 4);
        assert_eq!(s.next_record().unwrap().addr.0, 8);
        assert_eq!(s.next_record(), None);
        assert_eq!(s.next_record(), None, "stays exhausted");
    }

    #[test]
    fn bounded_source_caps_records() {
        let mut s = BoundedSource::new(three(), 2);
        assert!(s.next_record().is_some());
        assert!(s.next_record().is_some());
        assert_eq!(s.next_record(), None);
    }

    #[test]
    fn bounded_source_handles_short_inner() {
        let mut s = BoundedSource::new(three(), 10);
        let mut n = 0;
        while s.next_record().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
        assert_eq!(s.remaining(), 0, "inner exhaustion zeroes the budget");
    }

    #[test]
    fn boxed_source_delegates() {
        let mut s: Box<dyn TraceSource> = Box::new(three());
        assert_eq!(s.name(), "three");
        assert!(s.next_record().is_some());
    }
}
