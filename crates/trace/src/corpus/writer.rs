//! Writing shards: the streaming [`CorpusWriter`] and the suite
//! recorder that captures synthetic profiles into a corpus directory.

use super::block::{BlockEncoder, Fnv1a};
use super::manifest::{Manifest, ProfileExpect, ShardMeta, ShardStats};
use super::{CorpusError, CORPUS_FOOTER_MAGIC, CORPUS_MAGIC, DEFAULT_BLOCK_BYTES};
use crate::profiles::Profile;
use crate::record::{AccessKind, TraceRecord};
use crate::stream::TraceSource;
use std::collections::HashSet;
use std::io::{BufWriter, Write};
use std::path::Path;

/// What [`CorpusWriter::finish`] reports about the shard it wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSummary {
    /// Records written.
    pub records: u64,
    /// Blocks written.
    pub blocks: u64,
    /// Total file bytes (header, blocks, index, and footer).
    pub bytes: u64,
    /// FNV-1a checksum over every byte of the file.
    pub checksum: u64,
    /// Reference mix and page footprint of the recorded stream.
    pub stats: ShardStats,
}

/// Streams trace records into the corpus shard format.
///
/// Records are delta+varint encoded into ~64 KiB blocks (each with a
/// count and checksum); `finish` writes the block index and footer that
/// make the shard seekable. The writer needs only `Write` — offsets are
/// tracked by byte accounting, so it can target pipes and in-memory
/// buffers as well as files.
#[derive(Debug)]
pub struct CorpusWriter<W> {
    out: W,
    enc: BlockEncoder,
    block_bytes: usize,
    /// (file offset, first record number, record count) per block.
    blocks: Vec<(u64, u64, u32)>,
    bytes: u64,
    hash: Fnv1a,
    records: u64,
    ifetches: u64,
    reads: u64,
    writes: u64,
    pages: HashSet<u64>,
}

impl<W: Write> CorpusWriter<W> {
    /// Wrap a writer and emit the shard magic, closing blocks at the
    /// default ~64 KiB payload target.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing the header.
    pub fn new(out: W) -> Result<Self, CorpusError> {
        Self::with_block_bytes(out, DEFAULT_BLOCK_BYTES)
    }

    /// As [`new`](Self::new) with an explicit block payload target
    /// (small targets force many blocks — useful for exercising seeks
    /// and block-boundary behaviour in tests).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing the header.
    pub fn with_block_bytes(out: W, block_bytes: usize) -> Result<Self, CorpusError> {
        let mut w = CorpusWriter {
            out,
            enc: BlockEncoder::new(),
            block_bytes: block_bytes.max(16),
            blocks: Vec::new(),
            bytes: 0,
            hash: Fnv1a::new(),
            records: 0,
            ifetches: 0,
            reads: 0,
            writes: 0,
            pages: HashSet::new(),
        };
        w.emit(&CORPUS_MAGIC)?;
        Ok(w)
    }

    fn emit(&mut self, bytes: &[u8]) -> Result<(), CorpusError> {
        self.out.write_all(bytes)?;
        self.hash.update(bytes);
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    /// Append one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    pub fn write(&mut self, rec: TraceRecord) -> Result<(), CorpusError> {
        self.enc.push(rec);
        self.records += 1;
        match rec.kind {
            AccessKind::InstrFetch => self.ifetches += 1,
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
        self.pages.insert(rec.addr.page_number(4096));
        if self.enc.payload_len() >= self.block_bytes {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.records
    }

    fn flush_block(&mut self) -> Result<(), CorpusError> {
        if self.enc.is_empty() {
            return Ok(());
        }
        let count = self.enc.count();
        let (payload, _) = self.enc.take();
        let first_record = self.records - u64::from(count);
        self.blocks.push((self.bytes, first_record, count));
        let sum = super::block::block_checksum(&payload);
        self.emit(&(payload.len() as u32).to_le_bytes())?;
        self.emit(&count.to_le_bytes())?;
        self.emit(&sum.to_le_bytes())?;
        self.emit(&payload)?;
        Ok(())
    }

    /// Flush the final block, write the index and footer, and return the
    /// underlying writer plus the shard summary.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    pub fn finish(mut self) -> Result<(W, ShardSummary), CorpusError> {
        self.flush_block()?;
        let index_offset = self.bytes;
        self.emit(&(self.blocks.len() as u32).to_le_bytes())?;
        // Move the block list out so `emit` (which borrows self) can run
        // inside the loop.
        let blocks = std::mem::take(&mut self.blocks);
        for &(offset, first, count) in &blocks {
            self.emit(&offset.to_le_bytes())?;
            self.emit(&first.to_le_bytes())?;
            self.emit(&count.to_le_bytes())?;
        }
        self.emit(&index_offset.to_le_bytes())?;
        self.emit(&self.records.to_le_bytes())?;
        self.emit(&CORPUS_FOOTER_MAGIC)?;
        self.out.flush()?;
        let summary = ShardSummary {
            records: self.records,
            blocks: blocks.len() as u64,
            bytes: self.bytes,
            checksum: self.hash.0,
            stats: ShardStats {
                ifetches: self.ifetches,
                reads: self.reads,
                writes: self.writes,
                unique_pages: self.pages.len() as u64,
            },
        };
        Ok((self.out, summary))
    }
}

/// Record one source as a shard file in `dir` and return its manifest
/// entry (the caller assembles entries into a [`Manifest`]).
///
/// `seed`/`scale` stamp the shard with its synthetic identity (so
/// `--trace-dir` replay can match it to a workload); `profile` carries
/// the generating Table 2 expectations for the fidelity check.
///
/// # Errors
///
/// Any file I/O failure creating or writing the shard.
pub fn record_source<S: TraceSource>(
    dir: &Path,
    name: &str,
    source: &mut S,
    block_bytes: usize,
    seed: Option<u64>,
    scale: Option<u64>,
    profile: Option<ProfileExpect>,
) -> Result<ShardMeta, CorpusError> {
    std::fs::create_dir_all(dir)?;
    let file = format!("{name}.rct");
    let path = dir.join(&file);
    let out = BufWriter::new(std::fs::File::create(&path)?);
    let mut w = CorpusWriter::with_block_bytes(out, block_bytes)?;
    while let Some(rec) = source.next_record() {
        w.write(rec)?;
    }
    let (out, summary) = w.finish()?;
    out.into_inner().map_err(|e| CorpusError::Io(e.into()))?;
    Ok(ShardMeta {
        name: name.to_string(),
        file,
        records: summary.records,
        blocks: summary.blocks,
        bytes: summary.bytes,
        checksum: summary.checksum,
        seed,
        scale,
        stats: summary.stats,
        profile,
    })
}

/// Record a suite of Table 2 profiles into `dir` at `1/scale` volume and
/// write the corpus manifest. Returns the manifest.
///
/// # Errors
///
/// Any file I/O failure writing shards or the manifest.
pub fn record_profiles(
    dir: &Path,
    profiles: &[Profile],
    scale: u64,
    seed: u64,
    block_bytes: usize,
) -> Result<Manifest, CorpusError> {
    let mut shards = Vec::with_capacity(profiles.len());
    for p in profiles {
        let mut source = p.source(scale, seed);
        let expect = ProfileExpect {
            name: p.name.to_string(),
            ifetch_frac: p.ifetch_frac(),
            write_frac: p.write_frac,
        };
        shards.push(record_source(
            dir,
            p.name,
            &mut source,
            block_bytes,
            Some(seed),
            Some(scale),
            Some(expect),
        )?);
    }
    let manifest = Manifest { shards };
    manifest.save(dir)?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::TABLE2;

    #[test]
    fn writer_emits_expected_layout() {
        let mut w = CorpusWriter::with_block_bytes(Vec::new(), 16).unwrap();
        for i in 0..100u64 {
            w.write(TraceRecord::fetch(0x40_0000 + i * 4)).unwrap();
        }
        assert_eq!(w.written(), 100);
        let (bytes, summary) = w.finish().unwrap();
        assert_eq!(summary.records, 100);
        assert!(summary.blocks > 1, "tiny target forces multiple blocks");
        assert_eq!(summary.bytes, bytes.len() as u64);
        assert_eq!(&bytes[..8], &CORPUS_MAGIC);
        assert_eq!(&bytes[bytes.len() - 8..], &CORPUS_FOOTER_MAGIC);
        assert_eq!(summary.stats.ifetches, 100);
        assert_eq!(summary.stats.total(), 100);
        assert_eq!(summary.checksum, super::super::block::fnv1a(&bytes));
    }

    #[test]
    fn empty_shard_is_valid() {
        let w = CorpusWriter::new(Vec::new()).unwrap();
        let (bytes, summary) = w.finish().unwrap();
        assert_eq!(summary.records, 0);
        assert_eq!(summary.blocks, 0);
        // magic + count + footer.
        assert_eq!(bytes.len(), 8 + 4 + 24);
    }

    #[test]
    fn compression_beats_raw_bin_3x_on_a_profile() {
        // The acceptance bar: the corpus encoding is at least 3x smaller
        // than the 9-byte-per-record Bin format on a default profile.
        let p = &TABLE2[0];
        let mut src = p.source(5000, 0x7a9e);
        let mut w = CorpusWriter::new(Vec::new()).unwrap();
        let mut n = 0u64;
        while let Some(rec) = src.next_record() {
            w.write(rec).unwrap();
            n += 1;
        }
        let (bytes, _) = w.finish().unwrap();
        let bin_bytes = 8 + 9 * n;
        assert!(
            bytes.len() as u64 * 3 <= bin_bytes,
            "{} corpus bytes vs {bin_bytes} bin bytes for {n} records ({:.2} B/rec)",
            bytes.len(),
            bytes.len() as f64 / n as f64
        );
    }

    #[test]
    fn record_profiles_writes_manifest_and_shards() {
        let dir =
            std::env::temp_dir().join(format!("rampage-corpus-writer-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let m = record_profiles(&dir, &TABLE2[..2], 100_000, 7, DEFAULT_BLOCK_BYTES).unwrap();
        assert_eq!(m.shards.len(), 2);
        for s in &m.shards {
            assert!(dir.join(&s.file).exists());
            assert_eq!(s.seed, Some(7));
            assert_eq!(s.scale, Some(100_000));
            assert!(s.records > 0);
            let p = s.profile.as_ref().expect("profile recorded");
            assert!(p.drift(&s.stats) < 0.05, "drift {}", p.drift(&s.stats));
        }
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }
}
