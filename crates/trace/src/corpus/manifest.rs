//! `manifest.json`: the corpus directory's table of contents.

use super::{CorpusError, CORPUS_FORMAT_VERSION, MANIFEST_NAME};
use rampage_json::{obj, Json, ToJson};
use std::io::Write as _;
use std::path::Path;

/// Reference-mix counters for one shard — the Table-2-style profile
/// statistics the manifest carries so replay fidelity can be checked
/// without re-reading the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Instruction fetches recorded.
    pub ifetches: u64,
    /// Data loads recorded.
    pub reads: u64,
    /// Data stores recorded.
    pub writes: u64,
    /// Distinct 4 KiB pages touched.
    pub unique_pages: u64,
}

impl ShardStats {
    /// Total records.
    pub fn total(&self) -> u64 {
        self.ifetches + self.reads + self.writes
    }

    /// Instruction fetches as a fraction of all records.
    pub fn ifetch_frac(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.ifetches as f64 / self.total() as f64
    }

    /// Stores as a fraction of data references.
    pub fn write_frac(&self) -> f64 {
        let data = self.reads + self.writes;
        if data == 0 {
            return 0.0;
        }
        self.writes as f64 / data as f64
    }

    fn from_json(doc: &Json) -> Option<ShardStats> {
        Some(ShardStats {
            ifetches: doc.get("ifetches")?.as_u64()?,
            reads: doc.get("reads")?.as_u64()?,
            writes: doc.get("writes")?.as_u64()?,
            unique_pages: doc.get("unique_pages")?.as_u64()?,
        })
    }
}

impl ToJson for ShardStats {
    fn to_json(&self) -> Json {
        obj! {
            "ifetches" => self.ifetches,
            "reads" => self.reads,
            "writes" => self.writes,
            "unique_pages" => self.unique_pages,
        }
    }
}

/// The Table 2 profile parameters a shard was generated from, kept so
/// the verifier can measure drift between what the generator was asked
/// for and what landed on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileExpect {
    /// Profile name (a Table 2 program).
    pub name: String,
    /// Expected instruction-fetch fraction.
    pub ifetch_frac: f64,
    /// Expected store fraction of data references.
    pub write_frac: f64,
}

impl ProfileExpect {
    /// The largest absolute drift between these expectations and the
    /// observed `stats`.
    pub fn drift(&self, stats: &ShardStats) -> f64 {
        let di = (stats.ifetch_frac() - self.ifetch_frac).abs();
        let dw = (stats.write_frac() - self.write_frac).abs();
        di.max(dw)
    }

    fn from_json(doc: &Json) -> Option<ProfileExpect> {
        Some(ProfileExpect {
            name: doc.get("name")?.as_str()?.to_string(),
            ifetch_frac: doc.get("ifetch_frac")?.as_f64()?,
            write_frac: doc.get("write_frac")?.as_f64()?,
        })
    }
}

impl ToJson for ProfileExpect {
    fn to_json(&self) -> Json {
        obj! {
            "name" => self.name.as_str(),
            "ifetch_frac" => self.ifetch_frac,
            "write_frac" => self.write_frac,
        }
    }
}

/// One shard's manifest entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMeta {
    /// Trace name (usually the Table 2 program).
    pub name: String,
    /// Shard file name, relative to the corpus directory.
    pub file: String,
    /// Records in the shard.
    pub records: u64,
    /// Blocks in the shard.
    pub blocks: u64,
    /// Total shard file size in bytes.
    pub bytes: u64,
    /// FNV-1a checksum over the entire shard file.
    pub checksum: u64,
    /// Generator seed, when recorded from a synthetic profile.
    pub seed: Option<u64>,
    /// Trace-volume divisor, when recorded from a synthetic profile.
    pub scale: Option<u64>,
    /// Observed reference mix and footprint.
    pub stats: ShardStats,
    /// Generating profile parameters, when known.
    pub profile: Option<ProfileExpect>,
}

impl ShardMeta {
    fn from_json(doc: &Json) -> Option<ShardMeta> {
        Some(ShardMeta {
            name: doc.get("name")?.as_str()?.to_string(),
            file: doc.get("file")?.as_str()?.to_string(),
            records: doc.get("records")?.as_u64()?,
            blocks: doc.get("blocks")?.as_u64()?,
            bytes: doc.get("bytes")?.as_u64()?,
            checksum: doc.get("checksum")?.as_u64()?,
            seed: doc.get("seed").and_then(Json::as_u64),
            scale: doc.get("scale").and_then(Json::as_u64),
            stats: ShardStats::from_json(doc.get("stats")?)?,
            profile: match doc.get("profile") {
                Some(Json::Null) | None => None,
                Some(p) => Some(ProfileExpect::from_json(p)?),
            },
        })
    }
}

impl ToJson for ShardMeta {
    fn to_json(&self) -> Json {
        obj! {
            "name" => self.name.as_str(),
            "file" => self.file.as_str(),
            "records" => self.records,
            "blocks" => self.blocks,
            "bytes" => self.bytes,
            "checksum" => self.checksum,
            "seed" => self.seed,
            "scale" => self.scale,
            "stats" => self.stats,
            "profile" => match &self.profile {
                Some(p) => p.to_json(),
                None => Json::Null,
            },
        }
    }
}

/// The corpus directory's table of contents.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// Shards, in recording order.
    pub shards: Vec<ShardMeta>,
}

impl Manifest {
    /// Find a shard by trace name.
    pub fn find(&self, name: &str) -> Option<&ShardMeta> {
        self.shards.iter().find(|s| s.name == name)
    }

    /// Find a shard recorded from the given synthetic identity (name,
    /// seed, and scale all match) — the lookup `--trace-dir` replay
    /// uses, so a corpus recorded at one scale can never silently serve
    /// a workload asking for another.
    pub fn find_recorded(&self, name: &str, seed: u64, scale: u64) -> Option<&ShardMeta> {
        self.shards
            .iter()
            .find(|s| s.name == name && s.seed == Some(seed) && s.scale == Some(scale))
    }

    /// Total records across every shard.
    pub fn total_records(&self) -> u64 {
        self.shards.iter().map(|s| s.records).sum()
    }

    /// Total shard bytes across the corpus.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes).sum()
    }

    /// Serialize with the version envelope.
    pub fn to_json(&self) -> Json {
        obj! {
            "version" => CORPUS_FORMAT_VERSION,
            "shards" => self.shards.clone(),
        }
    }

    /// Rebuild from a serialized document.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Manifest`] on a missing/mismatched version or any
    /// malformed shard entry.
    pub fn from_json(doc: &Json) -> Result<Manifest, CorpusError> {
        let Some(version) = doc.get("version").and_then(Json::as_u64) else {
            return Err(CorpusError::Manifest("missing version".into()));
        };
        if version != CORPUS_FORMAT_VERSION {
            return Err(CorpusError::Manifest(format!(
                "version {version} (this build reads {CORPUS_FORMAT_VERSION})"
            )));
        }
        let Some(entries) = doc.get("shards").and_then(Json::as_array) else {
            return Err(CorpusError::Manifest("missing shards array".into()));
        };
        let mut shards = Vec::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            match ShardMeta::from_json(e) {
                Some(s) => shards.push(s),
                None => return Err(CorpusError::Manifest(format!("malformed shard entry {i}"))),
            }
        }
        Ok(Manifest { shards })
    }

    /// Load `manifest.json` from a corpus directory.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] when the file cannot be read,
    /// [`CorpusError::Manifest`] when it does not parse.
    pub fn load(dir: &Path) -> Result<Manifest, CorpusError> {
        let path = dir.join(MANIFEST_NAME);
        let text = std::fs::read_to_string(&path)?;
        let doc = Json::parse(&text)
            .map_err(|e| CorpusError::Manifest(format!("{}: {e}", path.display())))?;
        Manifest::from_json(&doc)
    }

    /// Write `manifest.json` into `dir`, atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Any underlying file I/O failure.
    pub fn save(&self, dir: &Path) -> Result<(), CorpusError> {
        let path = dir.join(MANIFEST_NAME);
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "{}", self.to_json().pretty())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            shards: vec![
                ShardMeta {
                    name: "alvinn".into(),
                    file: "alvinn.rct".into(),
                    records: 7280,
                    blocks: 2,
                    bytes: 16000,
                    checksum: 0xdead_beef,
                    seed: Some(0x7a9e),
                    scale: Some(10_000),
                    stats: ShardStats {
                        ifetches: 5900,
                        reads: 966,
                        writes: 414,
                        unique_pages: 37,
                    },
                    profile: Some(ProfileExpect {
                        name: "alvinn".into(),
                        ifetch_frac: 0.81,
                        write_frac: 0.30,
                    }),
                },
                ShardMeta {
                    name: "imported".into(),
                    file: "imported.rct".into(),
                    records: 10,
                    blocks: 1,
                    bytes: 80,
                    checksum: 1,
                    seed: None,
                    scale: None,
                    stats: ShardStats::default(),
                    profile: None,
                },
            ],
        }
    }

    #[test]
    fn manifest_roundtrips_through_json_text() {
        let m = sample();
        let text = m.to_json().pretty();
        let back = Manifest::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn lookups_discriminate_identity() {
        let m = sample();
        assert!(m.find("alvinn").is_some());
        assert!(m.find("gcc").is_none());
        assert!(m.find_recorded("alvinn", 0x7a9e, 10_000).is_some());
        assert!(m.find_recorded("alvinn", 0x7a9e, 20_000).is_none());
        assert!(m.find_recorded("alvinn", 1, 10_000).is_none());
        assert!(m.find_recorded("imported", 0, 0).is_none(), "no identity");
        assert_eq!(m.total_records(), 7290);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let doc = obj! { "version" => 99u64, "shards" => Vec::<Json>::new() };
        assert!(matches!(
            Manifest::from_json(&doc),
            Err(CorpusError::Manifest(_))
        ));
    }

    #[test]
    fn stats_fractions() {
        let s = ShardStats {
            ifetches: 60,
            reads: 28,
            writes: 12,
            unique_pages: 5,
        };
        assert!((s.ifetch_frac() - 0.6).abs() < 1e-12);
        assert!((s.write_frac() - 0.3).abs() < 1e-12);
        let p = ProfileExpect {
            name: "x".into(),
            ifetch_frac: 0.65,
            write_frac: 0.25,
        };
        assert!((p.drift(&s) - 0.05).abs() < 1e-12);
        assert_eq!(ShardStats::default().ifetch_frac(), 0.0);
        assert_eq!(ShardStats::default().write_frac(), 0.0);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rampage-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample();
        m.save(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }
}
