//! Replaying shards: the seekable, prefetching [`CorpusReader`].

use super::block::{block_checksum, decode_block_into};
use super::{CorpusError, CORPUS_FOOTER_MAGIC, CORPUS_MAGIC};
use crate::record::TraceRecord;
use crate::stream::TraceSource;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One block entry of a shard's end-of-file index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockEntry {
    /// File offset of the block header.
    offset: u64,
    /// Record number of the block's first record.
    first: u64,
    /// Records in the block.
    count: u32,
}

/// A shard's decoded index: everything needed to seek without touching
/// the blocks themselves.
#[derive(Debug)]
pub(crate) struct ShardIndex {
    blocks: Vec<BlockEntry>,
    total: u64,
    /// Where block data ends (the index begins here); blocks must stay
    /// inside it.
    data_end: u64,
}

impl ShardIndex {
    /// The block containing `record`, or `None` past the end.
    fn locate(&self, record: u64) -> Option<usize> {
        if record >= self.total {
            return None;
        }
        let i = self
            .blocks
            .partition_point(|b| b.first + u64::from(b.count) <= record);
        (i < self.blocks.len()).then_some(i)
    }
}

fn bad_index(path: &Path, reason: impl Into<String>) -> CorpusError {
    CorpusError::BadIndex {
        path: path.to_path_buf(),
        reason: reason.into(),
    }
}

/// Open a shard, check its magic, and decode the footer and block index.
fn load_index(path: &Path) -> Result<ShardIndex, CorpusError> {
    let mut f = File::open(path)?;
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)
        .map_err(|_| CorpusError::BadMagic(path.to_path_buf()))?;
    if magic != CORPUS_MAGIC {
        return Err(CorpusError::BadMagic(path.to_path_buf()));
    }
    let file_len = f.seek(SeekFrom::End(0))?;
    if file_len < 8 + 4 + 24 {
        return Err(bad_index(path, "file too short for an index footer"));
    }
    f.seek(SeekFrom::Start(file_len - 24))?;
    let mut footer = [0u8; 24];
    f.read_exact(&mut footer)?;
    if footer[16..24] != CORPUS_FOOTER_MAGIC {
        return Err(bad_index(path, "missing footer magic (truncated shard?)"));
    }
    let index_offset = u64::from_le_bytes(footer[0..8].try_into().unwrap_or_default());
    let total = u64::from_le_bytes(footer[8..16].try_into().unwrap_or_default());
    if index_offset < 8 || index_offset > file_len - 24 - 4 {
        return Err(bad_index(
            path,
            format!("index offset {index_offset} out of range"),
        ));
    }
    f.seek(SeekFrom::Start(index_offset))?;
    let mut count_buf = [0u8; 4];
    f.read_exact(&mut count_buf)?;
    let nblocks = u32::from_le_bytes(count_buf) as u64;
    if index_offset + 4 + nblocks * 20 != file_len - 24 {
        return Err(bad_index(path, "index size disagrees with file length"));
    }
    let mut entries = Vec::with_capacity(nblocks as usize);
    let mut entry_buf = [0u8; 20];
    let mut expect_first = 0u64;
    for i in 0..nblocks {
        f.read_exact(&mut entry_buf)?;
        let offset = u64::from_le_bytes(entry_buf[0..8].try_into().unwrap_or_default());
        let first = u64::from_le_bytes(entry_buf[8..16].try_into().unwrap_or_default());
        let count = u32::from_le_bytes(entry_buf[16..20].try_into().unwrap_or_default());
        if offset < 8 || offset + 16 > index_offset {
            return Err(bad_index(
                path,
                format!("block {i} offset {offset} out of range"),
            ));
        }
        if first != expect_first || count == 0 {
            return Err(bad_index(
                path,
                format!("block {i} record numbering inconsistent"),
            ));
        }
        expect_first = first + u64::from(count);
        entries.push(BlockEntry {
            offset,
            first,
            count,
        });
    }
    if expect_first != total {
        return Err(bad_index(
            path,
            "block counts do not sum to the footer total",
        ));
    }
    Ok(ShardIndex {
        blocks: entries,
        total,
        data_end: index_offset,
    })
}

/// A warning recorded when a corrupt block was quarantined and skipped
/// during replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusWarning {
    /// The shard being replayed.
    pub shard: String,
    /// 0-based block number of the bad block.
    pub block: u64,
    /// Records the skip dropped from the stream.
    pub records_lost: u64,
    /// What was wrong (checksum mismatch, bad header, decode failure).
    pub reason: String,
}

impl std::fmt::Display for CorpusWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} block {}: {} ({} record(s) skipped)",
            self.shard, self.block, self.reason, self.records_lost
        )
    }
}

fn push_warning(warnings: &Mutex<Vec<CorpusWarning>>, w: CorpusWarning) {
    warnings
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .push(w);
}

/// Read and decode one block into caller-owned scratch buffers, seeking
/// to its index offset first (so a corrupt neighbour cannot derail
/// framing). Both buffers are cleared and refilled; on error `out`
/// holds garbage the caller must discard.
fn read_block_into(
    f: &mut File,
    entry: &BlockEntry,
    block_no: u64,
    data_end: u64,
    payload: &mut Vec<u8>,
    out: &mut Vec<TraceRecord>,
) -> Result<(), String> {
    f.seek(SeekFrom::Start(entry.offset))
        .map_err(|e| format!("seek failed: {e}"))?;
    let mut hdr = [0u8; 16];
    f.read_exact(&mut hdr)
        .map_err(|e| format!("header read failed: {e}"))?;
    let len = u64::from(u32::from_le_bytes(hdr[0..4].try_into().unwrap_or_default()));
    let count = u32::from_le_bytes(hdr[4..8].try_into().unwrap_or_default());
    let sum = u64::from_le_bytes(hdr[8..16].try_into().unwrap_or_default());
    if count != entry.count {
        return Err(format!(
            "header count {count} disagrees with index count {}",
            entry.count
        ));
    }
    if entry.offset + 16 + len > data_end {
        return Err(format!("payload length {len} runs past the block area"));
    }
    payload.clear();
    payload.resize(len as usize, 0);
    f.read_exact(payload)
        .map_err(|e| format!("payload read failed: {e}"))?;
    #[cfg(feature = "fault")]
    if crate::fault::corrupts_block(block_no) {
        if let Some(b) = payload.first_mut() {
            *b ^= 0xff;
        }
    }
    #[cfg(not(feature = "fault"))]
    let _ = block_no;
    if block_checksum(payload) != sum {
        return Err("payload checksum mismatch".to_string());
    }
    decode_block_into(payload, count, out).map_err(|e| e.to_string())
}

/// The background decode loop: read blocks in order from `start_block`,
/// skip `skip` records of the first one, and hand decoded buffers to the
/// consumer over a bounded channel (capacity 2 — one buffer being
/// consumed, one ready, one being decoded: double buffering).
#[allow(clippy::too_many_arguments)]
fn prefetch(
    path: PathBuf,
    index: Arc<ShardIndex>,
    start_block: usize,
    skip: usize,
    shard: String,
    warnings: Arc<Mutex<Vec<CorpusWarning>>>,
    tx: SyncSender<Vec<TraceRecord>>,
) {
    let mut f = match File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            push_warning(
                &warnings,
                CorpusWarning {
                    shard,
                    block: start_block as u64,
                    records_lost: index.total - index.blocks[start_block].first,
                    reason: format!("could not reopen shard: {e}"),
                },
            );
            return;
        }
    };
    let mut skip = skip;
    let mut payload = Vec::new();
    for (i, entry) in index.blocks.iter().enumerate().skip(start_block) {
        let mut records = Vec::new();
        match read_block_into(
            &mut f,
            entry,
            i as u64,
            index.data_end,
            &mut payload,
            &mut records,
        ) {
            Ok(()) => {}
            Err(reason) => {
                push_warning(
                    &warnings,
                    CorpusWarning {
                        shard: shard.clone(),
                        block: i as u64,
                        records_lost: u64::from(entry.count) - skip as u64,
                        reason,
                    },
                );
                skip = 0;
                continue;
            }
        };
        if skip > 0 {
            records.drain(..skip.min(records.len()));
            skip = 0;
        }
        if tx.send(records).is_err() {
            return; // consumer dropped — stop reading
        }
    }
}

/// Where the next decoded block comes from.
///
/// With a spare core, a background prefetch thread reads and decodes
/// ahead over a bounded channel (double buffering: one block being
/// consumed, one ready, one in decode). On a single-CPU host that
/// thread cannot overlap anything — every handoff is a forced context
/// switch — so the reader decodes blocks inline on demand instead.
#[derive(Debug)]
enum Feed {
    /// Background prefetch thread, blocks arrive over the channel.
    Threaded {
        rx: Receiver<Vec<TraceRecord>>,
        handle: JoinHandle<()>,
    },
    /// Decode-on-demand: the open file plus the next block to read and
    /// how many records of it to skip.
    Inline {
        file: File,
        next_block: usize,
        skip: usize,
    },
    /// Exhausted (or never started: opened at/past the end).
    Done,
}

/// Replays a corpus shard as a [`TraceSource`].
///
/// Blocks are read and decoded ahead of the consumer on a background
/// prefetch thread when a spare core exists (inline, on demand, when
/// not — see [`Feed`]). The reader can start at any record number
/// ([`open_at`](Self::open_at)) and reposition in `O(log blocks)`
/// ([`seek`](Self::seek)).
///
/// A block that fails its checksum or decode is **skipped**: its records
/// vanish from the stream, and a [`CorpusWarning`] is recorded
/// ([`warnings`](Self::warnings)) instead of ending the replay — the
/// same quarantine-over-abort policy the cell cache uses for corrupt
/// entries.
#[derive(Debug)]
pub struct CorpusReader {
    name: String,
    path: PathBuf,
    index: Arc<ShardIndex>,
    warnings: Arc<Mutex<Vec<CorpusWarning>>>,
    feed: Feed,
    buf: Vec<TraceRecord>,
    pos: usize,
    /// Scratch for the inline feed's block payloads, reused across
    /// blocks (the threaded feed keeps its scratch on the thread).
    payload: Vec<u8>,
}

impl CorpusReader {
    /// Open a shard for replay from its first record.
    ///
    /// # Errors
    ///
    /// [`CorpusError::BadMagic`] / [`CorpusError::BadIndex`] when the
    /// file is not a readable shard, or any I/O failure.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CorpusError> {
        Self::open_at(path, 0)
    }

    /// Open a shard positioned at record number `record` (0-based).
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_at(path: impl AsRef<Path>, record: u64) -> Result<Self, CorpusError> {
        let path = path.as_ref().to_path_buf();
        let index = Arc::new(load_index(&path)?);
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "corpus".to_string());
        let mut reader = CorpusReader {
            name,
            path,
            index,
            warnings: Arc::new(Mutex::new(Vec::new())),
            feed: Feed::Done,
            buf: Vec::new(),
            pos: 0,
            payload: Vec::new(),
        };
        reader.start(record);
        Ok(reader)
    }

    /// Rename the source (reports show this instead of the file stem).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Total records in the shard (per its index).
    pub fn records(&self) -> u64 {
        self.index.total
    }

    /// Blocks in the shard.
    pub fn blocks(&self) -> u64 {
        self.index.blocks.len() as u64
    }

    /// Reposition the stream to record number `record` (0-based; at or
    /// past the end yields an exhausted stream). The prefetch thread is
    /// restarted at the containing block.
    pub fn seek(&mut self, record: u64) {
        self.stop();
        self.buf.clear();
        self.pos = 0;
        self.start(record);
    }

    /// Warnings recorded so far (corrupt blocks quarantined and
    /// skipped during this replay).
    pub fn warnings(&self) -> Vec<CorpusWarning> {
        self.warnings
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    fn start(&mut self, record: u64) {
        let Some(block) = self.index.locate(record) else {
            return; // at/past the end: stay exhausted
        };
        let skip = (record - self.index.blocks[block].first) as usize;
        let spare_core = std::thread::available_parallelism().is_ok_and(|n| n.get() > 1);
        if spare_core {
            let (tx, rx) = sync_channel(2);
            let path = self.path.clone();
            let index = Arc::clone(&self.index);
            let warnings = Arc::clone(&self.warnings);
            let shard = self.name.clone();
            let handle = std::thread::spawn(move || {
                prefetch(path, index, block, skip, shard, warnings, tx);
            });
            self.feed = Feed::Threaded { rx, handle };
        } else {
            match File::open(&self.path) {
                Ok(file) => {
                    self.feed = Feed::Inline {
                        file,
                        next_block: block,
                        skip,
                    };
                }
                Err(e) => {
                    push_warning(
                        &self.warnings,
                        CorpusWarning {
                            shard: self.name.clone(),
                            block: block as u64,
                            records_lost: self.index.total - self.index.blocks[block].first,
                            reason: format!("could not reopen shard: {e}"),
                        },
                    );
                    self.feed = Feed::Done;
                }
            }
        }
    }

    fn stop(&mut self) {
        // Dropping the receiver makes the producer's next send fail, so
        // the thread exits promptly; join to avoid leaking it.
        if let Feed::Threaded { rx, handle } = std::mem::replace(&mut self.feed, Feed::Done) {
            drop(rx);
            let _ = handle.join();
        }
    }

    /// Inline feed: read and decode blocks straight into `self.buf`
    /// (reusing its allocation and the payload scratch) until one
    /// yields records — a quarantined block warns and continues.
    /// Returns `false` when the shard is exhausted.
    fn refill_inline(&mut self) -> bool {
        let Feed::Inline {
            ref mut file,
            ref mut next_block,
            ref mut skip,
        } = self.feed
        else {
            return false;
        };
        while *next_block < self.index.blocks.len() {
            let i = *next_block;
            *next_block += 1;
            let entry = self.index.blocks[i];
            let drop_now = std::mem::take(skip);
            match read_block_into(
                file,
                &entry,
                i as u64,
                self.index.data_end,
                &mut self.payload,
                &mut self.buf,
            ) {
                Ok(()) => {
                    // Skip within the buffer by starting past the
                    // records an `open_at` position dropped.
                    self.pos = drop_now.min(self.buf.len());
                    return true;
                }
                Err(reason) => {
                    self.buf.clear();
                    self.pos = 0;
                    push_warning(
                        &self.warnings,
                        CorpusWarning {
                            shard: self.name.clone(),
                            block: i as u64,
                            records_lost: u64::from(entry.count) - drop_now as u64,
                            reason,
                        },
                    );
                }
            }
        }
        false
    }
}

impl TraceSource for CorpusReader {
    fn next_record(&mut self) -> Option<TraceRecord> {
        loop {
            if let Some(&rec) = self.buf.get(self.pos) {
                self.pos += 1;
                return Some(rec);
            }
            match self.feed {
                Feed::Inline { .. } => {
                    if !self.refill_inline() {
                        self.stop();
                        return None;
                    }
                    // Loop: the refill may start past every record (a
                    // fully skipped `open_at` position).
                }
                Feed::Threaded { ref rx, .. } => match rx.recv().ok() {
                    Some(b) => {
                        self.buf = b;
                        self.pos = 0;
                        // Loop: the buffer may be empty (fully skipped
                        // block).
                    }
                    None => {
                        self.stop();
                        return None;
                    }
                },
                Feed::Done => return None,
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for CorpusReader {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::super::writer::CorpusWriter;
    use super::*;
    use std::io::Write as _;

    fn sample_records(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| match i % 3 {
                0 => TraceRecord::fetch(0x40_0000 + i * 4),
                1 => TraceRecord::read(0x1000_0000 + i * 8),
                _ => TraceRecord::write(0x7fff_0000 - i * 16),
            })
            .collect()
    }

    fn write_shard(dir: &Path, name: &str, records: &[TraceRecord], block_bytes: usize) -> PathBuf {
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join(format!("{name}.rct"));
        let file = std::fs::File::create(&path).unwrap();
        let mut w = CorpusWriter::with_block_bytes(file, block_bytes).unwrap();
        for &r in records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        path
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rampage-reader-{tag}-{}", std::process::id()))
    }

    fn drain<S: TraceSource>(s: &mut S) -> Vec<TraceRecord> {
        std::iter::from_fn(|| s.next_record()).collect()
    }

    #[test]
    fn replay_is_bit_identical() {
        let dir = tmp("replay");
        let records = sample_records(5000);
        let path = write_shard(&dir, "t", &records, 256);
        let mut r = CorpusReader::open(&path).unwrap();
        assert_eq!(r.records(), 5000);
        assert!(r.blocks() > 10, "small blocks force many");
        assert_eq!(drain(&mut r), records);
        assert!(r.warnings().is_empty());
        assert_eq!(r.next_record(), None, "stays exhausted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_at_and_seek_resume_anywhere() {
        let dir = tmp("seek");
        let records = sample_records(3000);
        let path = write_shard(&dir, "t", &records, 128);
        // open_at every tricky position: block starts, mid-block, ends.
        let mut r = CorpusReader::open(&path).unwrap();
        for &at in &[0u64, 1, 7, 999, 1000, 2500, 2999, 3000, 4000] {
            r.seek(at);
            let expect: Vec<_> = records.iter().skip(at as usize).copied().collect();
            assert_eq!(drain(&mut r), expect, "seek to {at}");
        }
        let mut r2 = CorpusReader::open_at(&path, 1234).unwrap();
        assert_eq!(drain(&mut r2), records[1234..].to_vec());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_block_is_skipped_with_warning() {
        let dir = tmp("corrupt");
        let records = sample_records(900);
        let path = write_shard(&dir, "t", &records, 128);
        // Find block 1's payload via a clean reader's index, then flip a
        // byte of it on disk.
        let clean = CorpusReader::open(&path).unwrap();
        let lost_block = 1usize;
        let (offset, count, first) = {
            let b = clean.index.blocks[lost_block];
            (b.offset, b.count, b.first)
        };
        drop(clean);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[offset as usize + 16] ^= 0x55; // first payload byte
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&bytes)
            .unwrap();

        let mut r = CorpusReader::open(&path).unwrap();
        let got = drain(&mut r);
        let mut expect = records.clone();
        expect.drain(first as usize..first as usize + count as usize);
        assert_eq!(got, expect, "stream = original minus the bad block");
        let warnings = r.warnings();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].block, lost_block as u64);
        assert_eq!(warnings[0].records_lost, u64::from(count));
        assert!(
            warnings[0].reason.contains("checksum"),
            "{}",
            warnings[0].reason
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_shard_is_a_typed_error() {
        let dir = tmp("trunc");
        let records = sample_records(100);
        let path = write_shard(&dir, "t", &records, 128);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(matches!(
            CorpusReader::open(&path),
            Err(CorpusError::BadIndex { .. })
        ));
        std::fs::write(&path, b"NOTACORP").unwrap();
        assert!(matches!(
            CorpusReader::open(&path),
            Err(CorpusError::BadMagic(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_shard_replays_empty() {
        let dir = tmp("empty");
        let path = write_shard(&dir, "t", &[], 128);
        let mut r = CorpusReader::open(&path).unwrap();
        assert_eq!(r.records(), 0);
        assert_eq!(r.next_record(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reader_names_default_to_stem_and_rename() {
        let dir = tmp("name");
        let path = write_shard(&dir, "gcc", &sample_records(10), 128);
        let r = CorpusReader::open(&path).unwrap();
        assert_eq!(r.name(), "gcc");
        let r = r.with_name("renamed");
        assert_eq!(r.name(), "renamed");
        std::fs::remove_dir_all(&dir).ok();
    }
}
