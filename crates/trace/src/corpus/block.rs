//! The block codec: per-kind delta encoding with zigzag + LEB128
//! varints, one self-contained block at a time.
//!
//! Every record becomes a single varint holding
//! `(zigzag(addr - prev[kind]) << 2) | kind`, where `prev[kind]` is the
//! address of the previous record of the same access kind within the
//! block (0 at block start, so the first record of each kind encodes its
//! absolute address). Instruction fetches march sequentially through
//! code while data references hop between heap, stack, and globals;
//! keeping three independent bases means both streams see small deltas —
//! a fetch after a store still encodes as one or two bytes.
//!
//! The shifted value can occupy 66 bits for a pathological 64-bit delta,
//! so varints are coded through `u128` (at most ten bytes); typical
//! records take one to three.

use crate::record::{AccessKind, TraceRecord, VirtAddr};

/// 2-bit access-kind codes, matching the Dinero label convention.
fn kind_code(kind: AccessKind) -> u64 {
    match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::InstrFetch => 2,
    }
}

#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Append `v` as an LEB128 varint (7 payload bits per byte, high bit =
/// continuation).
fn write_varint(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode one varint at `*pos`, advancing it. `None` on truncation or a
/// value wider than 66 bits (nothing the encoder can produce).
///
/// The hot path is word-at-a-time: load the next eight bytes as one
/// little-endian `u64`, find the terminator (first byte with a clear
/// continuation bit) with `trailing_zeros`, and compact the 7-bit
/// payload groups with three masked shifts — no data-dependent loop,
/// so a mix of 1–4-byte deltas decodes without branch mispredicts.
/// Eight bytes cover 56 bits, which is every varint a realistic delta
/// produces; longer encodings and buffer tails under eight bytes take
/// the cold byte-loop path.
#[inline]
fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u128> {
    let p = *pos;
    let Some(window) = buf.get(p..p + 8) else {
        return read_varint_slow(buf, pos);
    };
    let word = u64::from_le_bytes(window.try_into().unwrap_or_default());
    let stops = !word & 0x8080_8080_8080_8080;
    if stops == 0 {
        return read_varint_slow(buf, pos); // 9- or 10-byte encoding
    }
    let n = (stops.trailing_zeros() >> 3) + 1; // bytes consumed, 1..=8
    *pos = p + n as usize;
    // Drop the bytes past the terminator, then squeeze each byte's low
    // seven bits together: pairs, then quads, then halves.
    let v = word & (u64::MAX >> (64 - 8 * n));
    let v = v & 0x7f7f_7f7f_7f7f_7f7f;
    let v = (v & 0x007f_007f_007f_007f) | ((v & 0x7f00_7f00_7f00_7f00) >> 1);
    let v = (v & 0x0000_3fff_0000_3fff) | ((v & 0x3fff_0000_3fff_0000) >> 2);
    let v = (v & 0x0000_0000_0fff_ffff) | ((v & 0x0fff_ffff_0000_0000) >> 4);
    Some(u128::from(v))
}

/// The cold tail of [`read_varint`]: byte-at-a-time parse for buffer
/// tails shorter than a full 8-byte window and for 9-byte encodings,
/// deferring 10-byte ones to [`read_varint_wide`].
#[cold]
fn read_varint_slow(buf: &[u8], pos: &mut usize) -> Option<u128> {
    let start = *pos;
    let mut v: u64 = 0;
    let mut shift = 0u32;
    while shift <= 56 {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(u128::from(v));
        }
        shift += 7;
    }
    read_varint_wide(buf, pos, start)
}

/// The rare wide tail of [`read_varint`]: re-parse from `start` in
/// `u128`, enforcing the 66-bit ceiling.
#[cold]
fn read_varint_wide(buf: &[u8], pos: &mut usize, start: usize) -> Option<u128> {
    *pos = start;
    let mut v: u128 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        if shift >= 70 {
            return None; // would exceed the encoder's 66-bit ceiling
        }
        v |= u128::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return if v >> 66 == 0 { Some(v) } else { None };
        }
        shift += 7;
    }
}

/// 64-bit FNV-1a over a whole byte slice; the reference the tests
/// check the streaming [`Fnv1a`] whole-file checksum against.
#[cfg(test)]
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The per-block payload checksum: FNV-1a folded over little-endian
/// 64-bit words (with a length-prefixed zero-padded tail) instead of
/// bytes. One multiply per eight bytes keeps the serially-dependent
/// hash chain off the replay hot path — block checksums are verified on
/// every block of every replay, unlike the file checksum, which only
/// the verifier computes.
pub(crate) fn block_checksum(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        let word = u64::from_le_bytes([w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7]]);
        h ^= word;
        h = h.wrapping_mul(PRIME);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Streaming FNV-1a for whole-file checksums.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv1a(pub u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Accumulates records into one block's payload.
#[derive(Debug)]
pub(crate) struct BlockEncoder {
    payload: Vec<u8>,
    count: u32,
    /// Previous address per kind code (read, write, ifetch).
    prev: [u64; 3],
}

impl BlockEncoder {
    pub(crate) fn new() -> Self {
        BlockEncoder {
            payload: Vec::with_capacity(4096),
            count: 0,
            prev: [0; 3],
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub(crate) fn payload_len(&self) -> usize {
        self.payload.len()
    }

    pub(crate) fn count(&self) -> u32 {
        self.count
    }

    /// Encode one record into the block.
    pub(crate) fn push(&mut self, rec: TraceRecord) {
        let k = kind_code(rec.kind);
        let delta = rec.addr.0.wrapping_sub(self.prev[k as usize]) as i64;
        self.prev[k as usize] = rec.addr.0;
        let v = (u128::from(zigzag(delta)) << 2) | u128::from(k);
        write_varint(&mut self.payload, v);
        self.count += 1;
    }

    /// Take the finished payload and record count, resetting the encoder
    /// for the next block.
    pub(crate) fn take(&mut self) -> (Vec<u8>, u32) {
        let payload = std::mem::take(&mut self.payload);
        let count = self.count;
        self.count = 0;
        self.prev = [0; 3];
        (payload, count)
    }
}

/// Why a block payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BlockDecodeError {
    /// A varint was truncated or out of the encodable range.
    BadVarint { at_record: u32 },
    /// A record carried the reserved kind code 3.
    BadKind { at_record: u32 },
    /// Payload held a different number of records than the header said.
    CountMismatch { decoded: u32, expected: u32 },
}

impl std::fmt::Display for BlockDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockDecodeError::BadVarint { at_record } => {
                write!(f, "bad varint at record {at_record}")
            }
            BlockDecodeError::BadKind { at_record } => {
                write!(f, "reserved kind code at record {at_record}")
            }
            BlockDecodeError::CountMismatch { decoded, expected } => {
                write!(f, "decoded {decoded} records, header says {expected}")
            }
        }
    }
}

/// Decode a whole block payload, verifying the record count.
#[cfg(test)]
pub(crate) fn decode_block(
    payload: &[u8],
    expected: u32,
) -> Result<Vec<TraceRecord>, BlockDecodeError> {
    let mut out = Vec::with_capacity(expected as usize);
    decode_block_into(payload, expected, &mut out)?;
    Ok(out)
}

/// Append the record packed in `v` (`(zigzag(delta) << 2) | kind`) to
/// `out`, updating the per-kind delta bases.
#[inline]
fn push_decoded(
    v: u128,
    prev: &mut [u64; 3],
    out: &mut Vec<TraceRecord>,
) -> Result<(), BlockDecodeError> {
    const KINDS: [AccessKind; 3] = [AccessKind::Read, AccessKind::Write, AccessKind::InstrFetch];
    let k = (v & 0x3) as usize;
    if k == 3 {
        return Err(BlockDecodeError::BadKind {
            at_record: out.len() as u32,
        });
    }
    let delta = unzigzag((v >> 2) as u64);
    let addr = prev[k].wrapping_add(delta as u64);
    prev[k] = addr;
    out.push(TraceRecord {
        addr: VirtAddr(addr),
        kind: KINDS[k],
    });
    Ok(())
}

/// [`decode_block`] into a caller-owned buffer (cleared first), so a
/// replay loop reuses one allocation across every block instead of
/// paging in a fresh multi-hundred-KiB `Vec` per block. On error the
/// buffer holds a partial decode the caller must discard.
///
/// The hot loop loads eight payload bytes at a time and decodes *every*
/// varint that terminates inside the window — with typical one-to-three
/// byte deltas that is several records per load, so the serial
/// `position → load → find-terminator → position` dependency chain that
/// bounds a byte-at-a-time decoder is amortised across them.
pub(crate) fn decode_block_into(
    payload: &[u8],
    expected: u32,
    out: &mut Vec<TraceRecord>,
) -> Result<(), BlockDecodeError> {
    const STOPS: u64 = 0x8080_8080_8080_8080;
    const LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
    out.clear();
    out.reserve(expected as usize);
    let mut prev = [0u64; 3];
    let mut pos = 0usize;
    while pos + 8 <= payload.len() {
        let word = u64::from_le_bytes(payload[pos..pos + 8].try_into().unwrap_or_default());
        let mut stops = !word & STOPS;
        if stops == 0 {
            // A nine- or ten-byte varint: generic path for one record.
            let at_record = out.len() as u32;
            let Some(v) = read_varint(payload, &mut pos) else {
                return Err(BlockDecodeError::BadVarint { at_record });
            };
            push_decoded(v, &mut prev, out)?;
            continue;
        }
        let mut start = 0u32; // bit offset of the current varint
        while stops != 0 {
            let end = stops.trailing_zeros() + 1; // bit past its stop byte
            stops &= stops - 1;
            let chunk = (word >> start) & (u64::MAX >> (64 - (end - start)));
            start = end;
            // Squeeze each byte's low seven bits together: pairs, then
            // quads, then halves.
            let v = chunk & LOW7;
            let v = (v & 0x007f_007f_007f_007f) | ((v & 0x7f00_7f00_7f00_7f00) >> 1);
            let v = (v & 0x0000_3fff_0000_3fff) | ((v & 0x3fff_0000_3fff_0000) >> 2);
            let v = (v & 0x0000_0000_0fff_ffff) | ((v & 0x0fff_ffff_0000_0000) >> 4);
            push_decoded(u128::from(v), &mut prev, out)?;
        }
        // A varint still open at the window's end re-parses from its
        // first byte in the next iteration's (overlapping) load.
        pos += (start >> 3) as usize;
    }
    // Tail: fewer than eight bytes left, decode byte-at-a-time.
    while pos < payload.len() {
        let at_record = out.len() as u32;
        let Some(v) = read_varint(payload, &mut pos) else {
            return Err(BlockDecodeError::BadVarint { at_record });
        };
        push_decoded(v, &mut prev, out)?;
    }
    if out.len() as u32 != expected {
        return Err(BlockDecodeError::CountMismatch {
            decoded: out.len() as u32,
            expected,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip(records: &[TraceRecord]) {
        let mut enc = BlockEncoder::new();
        for &r in records {
            enc.push(r);
        }
        let (payload, count) = enc.take();
        assert_eq!(count as usize, records.len());
        let back = decode_block(&payload, count).expect("decodes");
        assert_eq!(back, records);
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for d in [0i64, 1, -1, 4, -4, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        let mut buf = Vec::new();
        let values = [0u128, 1, 0x7f, 0x80, 0x3fff, 0x4000, (1 << 66) - 1];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_oversized_and_truncated() {
        // 11 continuation bytes never terminate within the allowed width.
        let over = [0x80u8; 12];
        assert_eq!(read_varint(&over, &mut 0), None);
        let mut buf = Vec::new();
        write_varint(&mut buf, 1 << 20);
        buf.pop();
        assert_eq!(read_varint(&buf, &mut 0), None, "truncated tail");
    }

    #[test]
    fn sequential_fetches_cost_one_byte() {
        let mut enc = BlockEncoder::new();
        enc.push(TraceRecord::fetch(0x40_0000));
        for i in 1..100u64 {
            enc.push(TraceRecord::fetch(0x40_0000 + i * 4));
        }
        let (payload, _) = enc.take();
        // First record pays for the absolute address; the rest are +4
        // deltas (zigzag 8, shifted 34) = one byte each.
        assert!(
            payload.len() < 4 + 99 * 2,
            "payload {} bytes",
            payload.len()
        );
    }

    #[test]
    fn per_kind_bases_keep_interleaved_streams_small() {
        // Alternate code fetches and far-away stack writes: with a single
        // base every record would pay a 5-byte cross-region delta; with
        // per-kind bases both streams are sequential.
        let mut enc = BlockEncoder::new();
        for i in 0..50u64 {
            enc.push(TraceRecord::fetch(0x40_0000 + i * 4));
            enc.push(TraceRecord::write(0x7fff_0000 - i * 8));
        }
        let (payload, count) = enc.take();
        assert_eq!(count, 100);
        assert!(
            payload.len() < 2 * 100,
            "interleaved payload {} bytes",
            payload.len()
        );
    }

    #[test]
    fn block_roundtrips_adversarial_streams() {
        roundtrip(&[]);
        roundtrip(&[TraceRecord::read(0)]);
        roundtrip(&[
            TraceRecord::read(u64::MAX),
            TraceRecord::write(0),
            TraceRecord::fetch(u64::MAX / 2),
            TraceRecord::read(1),
        ]);
    }

    #[test]
    fn block_roundtrips_random_streams() {
        for seed in 0..8u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let records: Vec<TraceRecord> = (0..1000)
                .map(|_| {
                    let addr: u64 = rng.gen();
                    match rng.gen_range(0u32..3) {
                        0 => TraceRecord::read(addr),
                        1 => TraceRecord::write(addr),
                        _ => TraceRecord::fetch(addr),
                    }
                })
                .collect();
            roundtrip(&records);
        }
    }

    #[test]
    fn decode_rejects_corrupt_payloads() {
        let mut enc = BlockEncoder::new();
        for i in 0..10u64 {
            enc.push(TraceRecord::read(0x1000 + i * 64));
        }
        let (payload, count) = enc.take();
        // Wrong expected count.
        assert!(matches!(
            decode_block(&payload, count + 1),
            Err(BlockDecodeError::CountMismatch { .. })
        ));
        // Truncated mid-varint (the first record's address spans bytes).
        let cut = &payload[..1];
        assert!(decode_block(cut, 1).is_err());
    }
}

#[cfg(test)]
mod perf_probe {
    use super::*;
    use crate::record::TraceRecord;

    /// Not an assertion — a diagnostic probe for decode throughput. Run:
    /// `cargo test -p rampage-trace --release probe_decode -- --nocapture --ignored`
    #[test]
    #[ignore]
    fn probe_decode_throughput() {
        let n = 1_000_000u64;
        let mut enc = BlockEncoder::new();
        let mut payloads = Vec::new();
        for i in 0..n {
            enc.push(match i % 4 {
                0 | 1 => TraceRecord::fetch(0x40_0000 + (i % 65536) * 4),
                2 => TraceRecord::read(0x1000_0000 + (i % 9999) * 8),
                _ => TraceRecord::write(0x7fff_0000 - (i % 777) * 16),
            });
            if enc.payload_len() >= 64 * 1024 {
                payloads.push(enc.take());
            }
        }
        if !enc.is_empty() {
            payloads.push(enc.take());
        }
        let t = std::time::Instant::now();
        let mut total = 0u64;
        for (p, c) in &payloads {
            total += decode_block(p, *c).unwrap().len() as u64;
        }
        let d = t.elapsed();
        println!(
            "decode: {} recs in {:?} ({:.2} ns/rec)",
            total,
            d,
            d.as_nanos() as f64 / total as f64
        );
        let t = std::time::Instant::now();
        let mut h = 0u64;
        for (p, _) in &payloads {
            h ^= block_checksum(p);
        }
        let d = t.elapsed();
        println!(
            "checksum: {:#x} in {:?} ({:.2} ns/rec)",
            h,
            d,
            d.as_nanos() as f64 / total as f64
        );
    }

    /// Phase breakdown of a full replay: raw decode vs the reader's
    /// end-to-end path over the same shard. Run:
    /// `cargo test -p rampage-trace --release probe_replay -- --nocapture --ignored`
    #[test]
    #[ignore]
    fn probe_replay_phases() {
        use crate::corpus::CorpusReader;
        use crate::stream::TraceSource;
        let dir = std::env::temp_dir().join(format!("rampage-probe-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.rct");
        {
            let f = std::fs::File::create(&path).unwrap();
            let mut w = crate::corpus::CorpusWriter::new(f).unwrap();
            let mut src = crate::profiles::TABLE2[0].source(200, 0xbe7c4);
            while let Some(r) = src.next_record() {
                w.write(r).unwrap();
            }
            w.finish().unwrap();
        }
        for _ in 0..3 {
            // Phase A: read the file, checksum + decode every block, drop.
            let t = std::time::Instant::now();
            let bytes = std::fs::read(&path).unwrap();
            let mut pos = 8usize;
            let index_off = u64::from_le_bytes(
                bytes[bytes.len() - 24..bytes.len() - 16]
                    .try_into()
                    .unwrap(),
            ) as usize;
            let mut total = 0u64;
            let mut out = Vec::new();
            while pos < index_off {
                let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
                let count = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
                let payload = &bytes[pos + 16..pos + 16 + len];
                assert_ne!(block_checksum(payload), 0);
                decode_block_into(payload, count, &mut out).unwrap();
                total += out.len() as u64;
                pos += 16 + len;
            }
            let a = t.elapsed();
            // Phase B: the reader end-to-end.
            let t = std::time::Instant::now();
            let mut r = CorpusReader::open(&path).unwrap();
            let mut n = 0u64;
            while let Some(rec) = r.next_record() {
                std::hint::black_box(rec);
                n += 1;
            }
            let b = t.elapsed();
            assert_eq!(n, total);
            println!(
                "raw decode: {:?} ({:.2} ns/rec)   reader: {:?} ({:.2} ns/rec)",
                a,
                a.as_nanos() as f64 / total as f64,
                b,
                b.as_nanos() as f64 / n as f64
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
