//! On-disk trace corpora: compressed, seekable, checksummed shard files.
//!
//! The paper's evaluation consumed 1.1 billion references of Tracebase
//! R2000 traces. This module is the data-loading layer that lets the
//! reproduction do the same with *files* instead of regenerating every
//! workload in memory: a corpus is a directory of **shard files** (one
//! per benchmark trace) plus a [`Manifest`] (`manifest.json`) describing
//! them — per-shard record counts, Table-2-style profile stats,
//! checksums, and the format version.
//!
//! # Shard format (version 1)
//!
//! ```text
//! "RAMPCOR1"                                  8-byte magic
//! block*                                      compressed record blocks
//!   u32 LE  payload length in bytes
//!   u32 LE  record count
//!   u64 LE  payload checksum (length-seeded FNV-1a over LE u64 words)
//!   payload delta + varint encoded records
//! index                                       written after the last block
//!   u32 LE  block count
//!   per block: u64 LE offset, u64 LE first record number, u32 LE count
//! footer                                      last 24 bytes of the file
//!   u64 LE  index offset
//!   u64 LE  total records
//!   "RAMPCIX1"                                8-byte trailing magic
//! ```
//!
//! Each block is self-contained: addresses are delta-encoded against the
//! previous record *of the same access kind* (instruction fetches march
//! through code while data references jump between heap, stack, and
//! globals — per-kind bases keep both delta streams small), the deltas
//! are zigzag + LEB128 varint coded with the 2-bit access kind packed
//! into the low bits, and the per-kind bases reset at every block start.
//! Blocks close at [`DEFAULT_BLOCK_BYTES`] (~64 KiB) of payload, so a
//! reader can decode any block knowing nothing but its bytes — which is
//! what makes the end-of-file index useful: [`CorpusReader`] seeks to
//! any reference number in `O(log blocks)`, and the verifier checks
//! shards in parallel.
//!
//! A block whose checksum or encoding fails to verify is **quarantined
//! and skipped**: the reader records a [`CorpusWarning`] and resumes at
//! the next block's index offset instead of aborting the replay (the
//! same recover-don't-abort policy the persisted cell cache uses).
//!
//! # Reading, writing, verifying
//!
//! * [`CorpusWriter`] streams any [`TraceSource`](crate::TraceSource)
//!   into a shard; [`record_profiles`] captures a whole Table 2 suite
//!   and writes the manifest.
//! * [`CorpusReader`] replays a shard as a `TraceSource`, decoding
//!   blocks on a background prefetch thread with double buffering.
//! * [`verify_dir`] re-reads every shard (in parallel), re-checksums
//!   every block, recomputes the stats, and reports drift against the
//!   generating Table 2 profile parameters.

mod block;
mod manifest;
mod reader;
mod verify;
mod writer;

pub use manifest::{Manifest, ProfileExpect, ShardMeta, ShardStats};
pub use reader::{CorpusReader, CorpusWarning};
pub use verify::{verify_dir, verify_dir_strict, ShardReport, VerifyReport};
pub use writer::{record_profiles, record_source, CorpusWriter, ShardSummary};

use std::io;
use std::path::PathBuf;

/// Magic header opening every shard file (format version 1).
pub const CORPUS_MAGIC: [u8; 8] = *b"RAMPCOR1";

/// Magic closing every shard file (the last 8 bytes).
pub const CORPUS_FOOTER_MAGIC: [u8; 8] = *b"RAMPCIX1";

/// Version stamp carried by `manifest.json`; bump when the shard or
/// manifest format changes shape.
pub const CORPUS_FORMAT_VERSION: u64 = 1;

/// The manifest's file name inside a corpus directory.
pub const MANIFEST_NAME: &str = "manifest.json";

/// Default block payload target: blocks close once their encoded payload
/// reaches this many bytes.
pub const DEFAULT_BLOCK_BYTES: usize = 64 * 1024;

/// How far a recorded shard's reference mix may drift from its
/// generating Table 2 profile before [`verify_dir`] fails the shard
/// (absolute difference on the instruction-fetch and write fractions),
/// before the small-sample allowance of [`fidelity_tolerance`].
pub const FIDELITY_TOLERANCE: f64 = 0.03;

/// The drift tolerance [`verify_dir`] applies to a shard of `records`
/// references: [`FIDELITY_TOLERANCE`] plus three standard deviations
/// of a worst-case (p = 0.5) binomial fraction estimate at that sample
/// size. A heavily scaled-down shard of a few hundred references can
/// legitimately sit a few points off its generating mix; at the
/// paper's volumes the allowance vanishes and the flat tolerance
/// governs.
pub fn fidelity_tolerance(records: u64) -> f64 {
    FIDELITY_TOLERANCE + 3.0 * (0.25 / records.max(1) as f64).sqrt()
}

/// Errors from corpus readers, writers, and the verifier.
#[derive(Debug)]
pub enum CorpusError {
    /// Underlying file I/O failure.
    Io(io::Error),
    /// A shard file does not start with [`CORPUS_MAGIC`].
    BadMagic(PathBuf),
    /// A shard's footer or block index is missing or inconsistent.
    BadIndex {
        /// The shard file.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
    /// `manifest.json` is missing, unparsable, or the wrong version.
    Manifest(String),
    /// The manifest names a shard the directory does not contain.
    MissingShard(String),
    /// A shard failed verification (checksums, counts, or profile
    /// drift); the report carries the details.
    VerifyFailed {
        /// Shards that failed.
        failed: usize,
        /// Shards checked in total.
        total: usize,
    },
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "corpus i/o error: {e}"),
            CorpusError::BadMagic(p) => {
                write!(
                    f,
                    "{} is not a rampage corpus shard (bad magic)",
                    p.display()
                )
            }
            CorpusError::BadIndex { path, reason } => {
                write!(f, "{}: unusable block index: {reason}", path.display())
            }
            CorpusError::Manifest(why) => write!(f, "corpus manifest: {why}"),
            CorpusError::MissingShard(name) => {
                write!(f, "manifest names shard {name:?} but its file is missing")
            }
            CorpusError::VerifyFailed { failed, total } => {
                write!(
                    f,
                    "corpus verification failed: {failed} of {total} shard(s) bad"
                )
            }
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> Self {
        CorpusError::Io(e)
    }
}
