//! Corpus verification: a sharded parallel check that every shard's
//! bytes, blocks, stats, and profile fidelity still match its manifest.

use super::block::Fnv1a;
use super::manifest::{Manifest, ShardMeta, ShardStats};
use super::reader::CorpusReader;
use super::{fidelity_tolerance, CorpusError};
use crate::record::AccessKind;
use crate::stream::TraceSource;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The verdict for one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Shard name (from the manifest).
    pub name: String,
    /// Records actually decoded.
    pub records: u64,
    /// Blocks walked.
    pub blocks: u64,
    /// Problems found; empty means the shard is healthy.
    pub problems: Vec<String>,
    /// Profile drift (max abs difference of ifetch/write fractions from
    /// the recorded Table 2 expectations), when a profile was recorded.
    pub drift: Option<f64>,
}

impl ShardReport {
    /// Whether the shard passed every check.
    pub fn ok(&self) -> bool {
        self.problems.is_empty()
    }
}

/// The verdict for a whole corpus directory.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Per-shard verdicts, in manifest order.
    pub shards: Vec<ShardReport>,
}

impl VerifyReport {
    /// Whether every shard passed.
    pub fn ok(&self) -> bool {
        self.shards.iter().all(ShardReport::ok)
    }

    /// Shards that failed.
    pub fn failed(&self) -> usize {
        self.shards.iter().filter(|s| !s.ok()).count()
    }

    /// A human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.shards {
            let status = if s.ok() { "ok" } else { "FAIL" };
            let drift = s
                .drift
                .map(|d| format!(", drift {d:.4}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "{:12} {:>10} records {:>6} blocks{drift}  {status}\n",
                s.name, s.records, s.blocks
            ));
            for p in &s.problems {
                out.push_str(&format!("             - {p}\n"));
            }
        }
        out.push_str(&format!(
            "{} shard(s), {} failed\n",
            self.shards.len(),
            self.failed()
        ));
        out
    }
}

/// Verify one shard against its manifest entry: file checksum, block
/// headers and payloads, recomputed stats, and (when recorded) profile
/// fidelity within [`fidelity_tolerance`] of the shard's record count.
fn verify_shard(dir: &Path, meta: &ShardMeta) -> ShardReport {
    let mut problems = Vec::new();
    let path = dir.join(&meta.file);
    let mut records = 0u64;
    let mut blocks = 0u64;
    let mut drift = None;

    match std::fs::read(&path) {
        Err(e) => problems.push(format!("unreadable: {e}")),
        Ok(bytes) => {
            if bytes.len() as u64 != meta.bytes {
                problems.push(format!(
                    "file is {} bytes, manifest says {}",
                    bytes.len(),
                    meta.bytes
                ));
            }
            let mut hash = Fnv1a::new();
            hash.update(&bytes);
            if hash.0 != meta.checksum {
                problems.push("file checksum disagrees with manifest".to_string());
            }
            match walk_blocks(&path) {
                Err(e) => problems.push(e),
                Ok((stats, nrecords, nblocks, walk_problems)) => {
                    records = nrecords;
                    blocks = nblocks;
                    problems.extend(walk_problems);
                    if nrecords != meta.records {
                        problems.push(format!(
                            "decoded {nrecords} records, manifest says {}",
                            meta.records
                        ));
                    }
                    if nblocks != meta.blocks {
                        problems.push(format!(
                            "walked {nblocks} blocks, manifest says {}",
                            meta.blocks
                        ));
                    }
                    if stats != meta.stats {
                        problems.push(format!(
                            "recomputed stats {stats:?} disagree with manifest {:?}",
                            meta.stats
                        ));
                    }
                    if let Some(p) = &meta.profile {
                        let d = p.drift(&stats);
                        let tol = fidelity_tolerance(meta.records);
                        drift = Some(d);
                        if d > tol {
                            problems
                                .push(format!("profile drift {d:.4} exceeds tolerance {tol:.4}"));
                        }
                    }
                }
            }
        }
    }

    ShardReport {
        name: meta.name.clone(),
        records,
        blocks,
        problems,
        drift,
    }
}

/// Decode every block of a shard, recomputing its reference-mix stats.
/// Returns `(stats, records, blocks, problems)`; a hard open/index
/// failure is the `Err` string.
#[allow(clippy::type_complexity)]
fn walk_blocks(path: &Path) -> Result<(ShardStats, u64, u64, Vec<String>), String> {
    let mut reader = CorpusReader::open(path).map_err(|e| format!("unreadable shard: {e}"))?;
    let blocks = reader.blocks();
    let mut problems = Vec::new();
    let mut ifetches = 0u64;
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut pages = HashSet::new();
    let mut records = 0u64;
    while let Some(rec) = reader.next_record() {
        records += 1;
        match rec.kind {
            AccessKind::InstrFetch => ifetches += 1,
            AccessKind::Read => reads += 1,
            AccessKind::Write => writes += 1,
        }
        pages.insert(rec.addr.page_number(4096));
    }
    for w in reader.warnings() {
        problems.push(format!("block {}: {}", w.block, w.reason));
    }
    Ok((
        ShardStats {
            ifetches,
            reads,
            writes,
            unique_pages: pages.len() as u64,
        },
        records,
        blocks,
        problems,
    ))
}

/// Verify every shard the manifest lists, fanning shards out over `jobs`
/// worker threads (clamped to at least 1). Shards missing from disk are
/// reported as failures; extra `.rct` files not in the manifest are
/// flagged too.
///
/// # Errors
///
/// [`CorpusError::Manifest`] if the manifest itself cannot be loaded;
/// per-shard problems land in the report rather than erroring.
pub fn verify_dir(dir: &Path, jobs: usize) -> Result<VerifyReport, CorpusError> {
    let manifest = Manifest::load(dir)?;
    let jobs = jobs.max(1);
    let work: Vec<(usize, ShardMeta)> = manifest.shards.iter().cloned().enumerate().collect();
    let queue = Mutex::new(work.into_iter());
    let results: Mutex<Vec<(usize, ShardReport)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(manifest.shards.len().max(1)) {
            scope.spawn(|| loop {
                let next = {
                    let mut q = queue.lock().unwrap_or_else(|p| p.into_inner());
                    q.next()
                };
                let Some((i, meta)) = next else { break };
                let report = verify_shard(dir, &meta);
                results
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push((i, report));
            });
        }
    });
    let mut indexed = results.into_inner().unwrap_or_else(|p| p.into_inner());
    indexed.sort_by_key(|(i, _)| *i);
    let mut shards: Vec<ShardReport> = indexed.into_iter().map(|(_, r)| r).collect();

    // Flag stray shard files the manifest does not know about.
    if let Ok(entries) = std::fs::read_dir(dir) {
        let known: HashSet<PathBuf> = manifest.shards.iter().map(|s| dir.join(&s.file)).collect();
        for entry in entries.flatten() {
            let p = entry.path();
            if p.extension().is_some_and(|e| e == "rct") && !known.contains(&p) {
                shards.push(ShardReport {
                    name: p
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_else(|| "?".to_string()),
                    records: 0,
                    blocks: 0,
                    problems: vec!["shard file not listed in manifest".to_string()],
                    drift: None,
                });
            }
        }
    }
    Ok(VerifyReport { shards })
}

/// Convenience wrapper used by tests and the CLI: verify and convert a
/// failing report into [`CorpusError::VerifyFailed`].
///
/// # Errors
///
/// [`CorpusError::VerifyFailed`] when any shard fails;
/// [`CorpusError::Manifest`] when the manifest cannot be loaded.
pub fn verify_dir_strict(dir: &Path, jobs: usize) -> Result<VerifyReport, CorpusError> {
    let report = verify_dir(dir, jobs)?;
    if report.ok() {
        Ok(report)
    } else {
        Err(CorpusError::VerifyFailed {
            failed: report.failed(),
            total: report.shards.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::writer::record_profiles;
    use super::*;
    use crate::profiles::TABLE2;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rampage-verify-{tag}-{}", std::process::id()))
    }

    #[test]
    fn healthy_corpus_verifies_clean() {
        let dir = tmp("clean");
        std::fs::remove_dir_all(&dir).ok();
        record_profiles(&dir, &TABLE2[..3], 20_000, 0x7a9e, 2048).unwrap();
        let report = verify_dir(&dir, 4).unwrap();
        assert_eq!(report.shards.len(), 3);
        assert!(report.ok(), "{}", report.render());
        assert!(report.render().contains("0 failed"));
        for s in &report.shards {
            assert!(s.drift.is_some());
        }
        verify_dir_strict(&dir, 2).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_shard_fails_verification() {
        let dir = tmp("tamper");
        std::fs::remove_dir_all(&dir).ok();
        let m = record_profiles(&dir, &TABLE2[..2], 20_000, 1, 2048).unwrap();
        let victim = dir.join(&m.shards[0].file);
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&victim, &bytes).unwrap();
        let report = verify_dir(&dir, 2).unwrap();
        assert!(!report.ok());
        assert_eq!(report.failed(), 1);
        assert!(!report.shards[0].ok());
        assert!(report.shards[1].ok());
        assert!(matches!(
            verify_dir_strict(&dir, 2),
            Err(CorpusError::VerifyFailed {
                failed: 1,
                total: 2
            })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_stray_shards_are_flagged() {
        let dir = tmp("stray");
        std::fs::remove_dir_all(&dir).ok();
        let m = record_profiles(&dir, &TABLE2[..2], 20_000, 2, 2048).unwrap();
        // Rename shard 0: now it is both missing and a stray.
        let old = dir.join(&m.shards[0].file);
        let stray = dir.join("stray.rct");
        std::fs::rename(&old, &stray).unwrap();
        let report = verify_dir(&dir, 2).unwrap();
        assert!(!report.ok());
        let names: Vec<&str> = report.shards.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"stray"));
        assert!(report.failed() >= 2, "{}", report.render());
        std::fs::remove_dir_all(&dir).ok();
    }
}
