//! Address traces and synthetic workloads for the RAMpage simulator.
//!
//! The ASPLOS 1998 RAMpage study was driven by 18 address traces from the
//! New Mexico State University *Tracebase* archive (SPEC92 programs plus
//! Unix utilities, 1.1 billion references total, listed in Table 2 of the
//! paper). Those traces are no longer practically obtainable, so this crate
//! provides the closest synthetic equivalent: deterministic, seeded
//! generators that reproduce the *locality structure* the paper's
//! experiments stress — instruction working sets, spatial runs over arrays,
//! pointer chases, hot/cold data mixes — parameterized per benchmark from
//! the paper's Table 2 (instruction-fetch fraction and reference volume).
//!
//! The crate also provides the multiprogramming machinery the paper
//! describes in §4.2: traces are interleaved round-robin with a 500 000
//! reference quantum to simulate a multiprogrammed workload.
//!
//! # Quick example
//!
//! ```
//! use rampage_trace::{profiles, Interleaver, ScheduleEvent};
//!
//! // Build the paper's 18-program workload at 1/1000 scale.
//! let sources = profiles::standard_suite(1000, 42);
//! let mut mix = Interleaver::new(sources, 500_000);
//! let mut n = 0u64;
//! while let ScheduleEvent::Record { record, .. } = mix.next_event() {
//!     let _ = record.addr;
//!     n += 1;
//! }
//! assert!(n > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
#[cfg(feature = "fault")]
pub mod fault;
mod interleave;
pub mod io;
mod record;
mod stats;
mod stream;

pub mod profiles;
pub mod synth;

pub use interleave::{InterleaveError, Interleaver, ProcessId, ScheduleEvent};
pub use record::{AccessKind, Asid, TraceRecord, VirtAddr};
pub use stats::{MixFractions, TraceStats};
pub use stream::{BoundedSource, TraceSource, VecSource};
