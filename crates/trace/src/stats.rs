//! Trace statistics: reference mix and footprints.

use crate::record::{AccessKind, TraceRecord};
use crate::stream::TraceSource;
use std::collections::HashSet;

/// Fractions of each reference kind within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MixFractions {
    /// Instruction fetches / total.
    pub ifetch: f64,
    /// Loads / total.
    pub read: f64,
    /// Stores / total.
    pub write: f64,
}

/// Aggregate statistics over a trace prefix.
///
/// Used to validate that synthetic workloads match their Table 2 profiles
/// and to size working sets against cache/TLB reach.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Total references observed.
    pub total: u64,
    /// Instruction fetches observed.
    pub ifetches: u64,
    /// Loads observed.
    pub reads: u64,
    /// Stores observed.
    pub writes: u64,
    /// Distinct cache blocks touched (block size given at collection).
    pub unique_blocks: u64,
    /// Distinct pages touched (page size given at collection).
    pub unique_pages: u64,
}

impl TraceStats {
    /// Collect statistics over up to `limit` records of `source`.
    ///
    /// `block_size` and `page_size` must be powers of two; they determine
    /// the footprint granularities reported in [`unique_blocks`] and
    /// [`unique_pages`].
    ///
    /// [`unique_blocks`]: TraceStats::unique_blocks
    /// [`unique_pages`]: TraceStats::unique_pages
    ///
    /// # Panics
    ///
    /// Panics if `block_size` or `page_size` is not a power of two.
    pub fn collect<S: TraceSource>(
        source: &mut S,
        limit: u64,
        block_size: u64,
        page_size: u64,
    ) -> Self {
        assert!(block_size.is_power_of_two(), "block size");
        assert!(page_size.is_power_of_two(), "page size");
        let mut stats = TraceStats::default();
        let mut blocks = HashSet::new();
        let mut pages = HashSet::new();
        while stats.total < limit {
            let Some(rec) = source.next_record() else {
                break;
            };
            stats.observe(rec);
            blocks.insert(rec.addr.0 >> block_size.trailing_zeros());
            pages.insert(rec.addr.0 >> page_size.trailing_zeros());
        }
        stats.unique_blocks = blocks.len() as u64;
        stats.unique_pages = pages.len() as u64;
        stats
    }

    /// Count a single record (footprints are only tracked by
    /// [`collect`](TraceStats::collect)).
    pub fn observe(&mut self, rec: TraceRecord) {
        self.total += 1;
        match rec.kind {
            AccessKind::InstrFetch => self.ifetches += 1,
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
    }

    /// The observed reference mix.
    pub fn mix(&self) -> MixFractions {
        if self.total == 0 {
            return MixFractions::default();
        }
        let t = self.total as f64;
        MixFractions {
            ifetch: self.ifetches as f64 / t,
            read: self.reads as f64 / t,
            write: self.writes as f64 / t,
        }
    }

    /// Data footprint in bytes at the collection's page granularity.
    pub fn page_footprint_bytes(&self, page_size: u64) -> u64 {
        self.unique_pages * page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::VecSource;

    #[test]
    fn mix_and_footprint_counts() {
        let mut s = VecSource::new(
            "t",
            vec![
                TraceRecord::fetch(0),
                TraceRecord::fetch(4),
                TraceRecord::read(0x1000),
                TraceRecord::write(0x1008),
                TraceRecord::read(0x2000),
            ],
        );
        let st = TraceStats::collect(&mut s, 100, 32, 4096);
        assert_eq!(st.total, 5);
        assert_eq!(st.ifetches, 2);
        assert_eq!(st.reads, 2);
        assert_eq!(st.writes, 1);
        // Blocks: {0, 0x1000/32, 0x2000/32} and 0x1008 shares 0x1000's block.
        assert_eq!(st.unique_blocks, 3);
        // Pages: {0, 1, 2}.
        assert_eq!(st.unique_pages, 3);
        assert_eq!(st.page_footprint_bytes(4096), 3 * 4096);

        let mix = st.mix();
        assert!((mix.ifetch - 0.4).abs() < 1e-9);
        assert!((mix.read - 0.4).abs() < 1e-9);
        assert!((mix.write - 0.2).abs() < 1e-9);
    }

    #[test]
    fn limit_stops_collection() {
        let mut s = VecSource::new("t", (0..100).map(|i| TraceRecord::fetch(i * 4)).collect());
        let st = TraceStats::collect(&mut s, 10, 32, 4096);
        assert_eq!(st.total, 10);
    }

    #[test]
    fn empty_trace_yields_zero_mix() {
        let mut s = VecSource::new("e", vec![]);
        let st = TraceStats::collect(&mut s, 10, 32, 4096);
        assert_eq!(st.total, 0);
        assert_eq!(st.mix(), MixFractions::default());
    }
}
