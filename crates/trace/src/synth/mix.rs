//! The per-benchmark mixer: combines a code generator and weighted data
//! generators into a single [`TraceSource`].

use crate::record::{AccessKind, TraceRecord};
use crate::stream::TraceSource;
use crate::synth::code::CodeGen;
use crate::synth::data::DataGen;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A data generator plus its selection weight within a benchmark.
pub struct WeightedData {
    /// The generator.
    pub gen: Box<dyn DataGen + Send>,
    /// Relative weight (any positive scale; normalized internally).
    pub weight: f64,
}

impl WeightedData {
    /// Convenience constructor.
    pub fn new(gen: impl DataGen + Send + 'static, weight: f64) -> Self {
        WeightedData {
            gen: Box::new(gen),
            weight,
        }
    }
}

impl std::fmt::Debug for WeightedData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeightedData")
            .field("weight", &self.weight)
            .finish_non_exhaustive()
    }
}

/// Static description of a benchmark's reference mix.
///
/// `ifetch_frac` and `write_frac` come straight from the paper's Table 2
/// (instruction fetches / total references) and typical SPEC92 store ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixSpec {
    /// Fraction of all references that are instruction fetches.
    pub ifetch_frac: f64,
    /// Fraction of *data* references that are writes.
    pub write_frac: f64,
}

impl MixSpec {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics if either fraction is outside `[0, 1]`.
    pub fn new(ifetch_frac: f64, write_frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&ifetch_frac), "ifetch_frac");
        assert!((0.0..=1.0).contains(&write_frac), "write_frac");
        MixSpec {
            ifetch_frac,
            write_frac,
        }
    }
}

/// A complete synthetic benchmark: instruction stream + data streams.
///
/// Per reference, the mixer draws an instruction fetch with probability
/// `spec.ifetch_frac`, otherwise a data reference from one of the weighted
/// generators (write with probability `spec.write_frac`). All randomness is
/// seeded, so a given construction always yields the same trace.
pub struct BenchmarkSynth {
    name: String,
    spec: MixSpec,
    code: CodeGen,
    data: Vec<WeightedData>,
    cumulative: Vec<f64>,
    rng: StdRng,
}

impl BenchmarkSynth {
    /// Assemble a benchmark from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or all weights are zero/negative while
    /// data references are possible (`spec.ifetch_frac < 1`).
    pub fn new(
        name: impl Into<String>,
        spec: MixSpec,
        code: CodeGen,
        data: Vec<WeightedData>,
        seed: u64,
    ) -> Self {
        let total: f64 = data.iter().map(|d| d.weight.max(0.0)).sum();
        if spec.ifetch_frac < 1.0 {
            assert!(
                !data.is_empty() && total > 0.0,
                "benchmark with data references needs weighted data generators"
            );
        }
        let mut acc = 0.0;
        let cumulative = data
            .iter()
            .map(|d| {
                acc += d.weight.max(0.0) / total.max(f64::MIN_POSITIVE);
                acc
            })
            .collect();
        BenchmarkSynth {
            name: name.into(),
            spec,
            code,
            data,
            cumulative,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The benchmark's mix specification.
    pub fn spec(&self) -> MixSpec {
        self.spec
    }

    fn pick_data(&mut self) -> TraceRecord {
        let kind = if self.rng.gen::<f64>() < self.spec.write_frac {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let r: f64 = self.rng.gen();
        let idx = self
            .cumulative
            .iter()
            .position(|&c| r <= c)
            .unwrap_or(self.data.len() - 1);
        self.data[idx].gen.next_data(kind)
    }
}

impl std::fmt::Debug for BenchmarkSynth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkSynth")
            .field("name", &self.name)
            .field("spec", &self.spec)
            .field("generators", &self.data.len())
            .finish_non_exhaustive()
    }
}

impl TraceSource for BenchmarkSynth {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let rec = if self.rng.gen::<f64>() < self.spec.ifetch_frac {
            self.code.next_fetch()
        } else {
            self.pick_data()
        };
        Some(rec)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::data::{HotCold, SequentialSweep};
    use crate::synth::layout;

    fn sample(bench: &mut BenchmarkSynth, n: usize) -> Vec<TraceRecord> {
        (0..n).map(|_| bench.next_record().unwrap()).collect()
    }

    fn toy(spec: MixSpec) -> BenchmarkSynth {
        BenchmarkSynth::new(
            "toy",
            spec,
            CodeGen::new(layout::CODE_BASE, 16 * 1024, 6, 0.4, 0.1, 1),
            vec![
                WeightedData::new(SequentialSweep::new(layout::HEAP_BASE, 1 << 20, 8), 3.0),
                WeightedData::new(
                    HotCold::new(
                        layout::GLOBAL_BASE,
                        4096,
                        layout::GLOBAL_BASE + 0x10_0000,
                        1 << 20,
                        0.9,
                        4,
                        2,
                    ),
                    1.0,
                ),
            ],
            7,
        )
    }

    #[test]
    fn mix_matches_ifetch_fraction() {
        let mut b = toy(MixSpec::new(0.75, 0.3));
        let recs = sample(&mut b, 40_000);
        let ifetches = recs
            .iter()
            .filter(|r| r.kind == AccessKind::InstrFetch)
            .count();
        let frac = ifetches as f64 / recs.len() as f64;
        assert!((0.73..0.77).contains(&frac), "ifetch fraction {frac}");
    }

    #[test]
    fn write_fraction_of_data_refs() {
        let mut b = toy(MixSpec::new(0.5, 0.25));
        let recs = sample(&mut b, 40_000);
        let data: Vec<_> = recs.iter().filter(|r| r.kind.is_data()).collect();
        let writes = data.iter().filter(|r| r.kind.is_write()).count();
        let frac = writes as f64 / data.len() as f64;
        assert!((0.22..0.28).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn pure_instruction_stream_needs_no_data_gens() {
        let mut b = BenchmarkSynth::new(
            "codeonly",
            MixSpec::new(1.0, 0.0),
            CodeGen::new(layout::CODE_BASE, 4096, 6, 0.3, 0.0, 3),
            vec![],
            9,
        );
        for _ in 0..1000 {
            assert_eq!(b.next_record().unwrap().kind, AccessKind::InstrFetch);
        }
    }

    #[test]
    #[should_panic(expected = "weighted data generators")]
    fn rejects_data_mix_without_generators() {
        let _ = BenchmarkSynth::new(
            "bad",
            MixSpec::new(0.5, 0.2),
            CodeGen::new(layout::CODE_BASE, 4096, 6, 0.3, 0.0, 3),
            vec![],
            9,
        );
    }

    #[test]
    fn deterministic_across_constructions() {
        let mut a = toy(MixSpec::new(0.6, 0.3));
        let mut b = toy(MixSpec::new(0.6, 0.3));
        for _ in 0..5000 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn weights_bias_generator_selection() {
        // Weight the sweep 3:1 over hot/cold; heap addresses should
        // dominate data references roughly 3:1.
        let mut b = toy(MixSpec::new(0.0, 0.0));
        let recs = sample(&mut b, 20_000);
        let heap = recs
            .iter()
            .filter(|r| r.addr.0 >= layout::HEAP_BASE)
            .count();
        let frac = heap as f64 / recs.len() as f64;
        assert!((0.70..0.80).contains(&frac), "heap fraction {frac}");
    }
}
