//! Data-reference generators.

use crate::record::{AccessKind, TraceRecord, VirtAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generator of data reference addresses.
///
/// Each call yields the next address; the caller (the
/// [mixer](crate::synth::BenchmarkSynth)) decides whether the reference is a
/// load or a store.
pub trait DataGen {
    /// Next data address.
    fn next_addr(&mut self) -> VirtAddr;

    /// Produce a full record with the given kind.
    fn next_data(&mut self, kind: AccessKind) -> TraceRecord {
        debug_assert!(kind.is_data());
        TraceRecord {
            addr: self.next_addr(),
            kind,
        }
    }
}

/// Unit-or-strided streaming over an array region, wrapping at the end.
///
/// This is the dominant access pattern of the paper's SPECfp92 codes
/// (`swm256`, `su2cor`, `nasa7`, …): long sequential runs with near-perfect
/// spatial locality, which is what makes large blocks and pages profitable.
#[derive(Debug, Clone)]
pub struct SequentialSweep {
    base: u64,
    len: u64,
    stride: u64,
    pos: u64,
}

impl SequentialSweep {
    /// Stream over `[base, base+len)` advancing `stride` bytes per
    /// reference (unit stride for byte/word streaming, larger strides for
    /// column-major or struct-field sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `len` or `stride` is zero or `stride > len`.
    pub fn new(base: u64, len: u64, stride: u64) -> Self {
        assert!(len > 0 && stride > 0, "empty sweep");
        assert!(stride <= len, "stride larger than region");
        SequentialSweep {
            base,
            len,
            stride,
            pos: 0,
        }
    }

    /// The region size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }
}

impl DataGen for SequentialSweep {
    fn next_addr(&mut self) -> VirtAddr {
        let a = self.base + self.pos;
        self.pos += self.stride;
        if self.pos >= self.len {
            self.pos = 0;
        }
        VirtAddr(a)
    }
}

/// A dependent pointer chase over a shuffled pool of fixed-size nodes.
///
/// Visits nodes in a fixed random permutation (a single cycle), modelling
/// linked-list / tree traversals with essentially no spatial locality —
/// the pattern that makes large transfer units waste bandwidth.
#[derive(Debug, Clone)]
pub struct PointerChase {
    base: u64,
    node_size: u64,
    /// next[i] = index of the node after node i (one big cycle).
    next: Vec<u32>,
    cur: u32,
}

impl PointerChase {
    /// Build a chase over `nodes` nodes of `node_size` bytes starting at
    /// `base`, shuffled with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or does not fit in `u32`.
    pub fn new(base: u64, nodes: usize, node_size: u64, seed: u64) -> Self {
        assert!(nodes > 0, "empty node pool");
        assert!(u32::try_from(nodes).is_ok(), "node pool too large");
        let mut rng = StdRng::seed_from_u64(seed);
        // Sattolo's algorithm: a uniformly random single n-cycle, so the
        // chase visits every node before repeating.
        let mut next: Vec<u32> = (0..nodes as u32).collect();
        for i in (1..nodes).rev() {
            let j = rng.gen_range(0..i);
            next.swap(i, j);
        }
        PointerChase {
            base,
            node_size: node_size.max(1),
            next,
            cur: 0,
        }
    }

    /// Number of nodes in the pool.
    pub fn nodes(&self) -> usize {
        self.next.len()
    }
}

impl DataGen for PointerChase {
    fn next_addr(&mut self) -> VirtAddr {
        let a = self.base + self.cur as u64 * self.node_size;
        self.cur = self.next[self.cur as usize];
        VirtAddr(a)
    }
}

/// A hot set with occasional cold excursions.
///
/// With probability `p_hot` the next reference lands uniformly in a small
/// hot region (cache-resident reuse); otherwise it continues a *cold run*:
/// a sequential walk through the cold region that starts at a uniformly
/// random point and advances `align` bytes per cold reference for a
/// geometrically distributed number of references (mean `mean_run`).
///
/// `p_hot` is the temporal-locality knob (steady-state miss rate out of
/// any level between the two region sizes); `mean_run` is the *spatial*
/// locality knob — real programs process records and rows sequentially,
/// so cold data arrives in runs, which is precisely what makes large
/// transfer units (the paper's L2 blocks and SRAM pages) pay off.
#[derive(Debug, Clone)]
pub struct HotCold {
    hot_base: u64,
    hot_size: u64,
    cold_base: u64,
    cold_size: u64,
    p_hot: f64,
    align: u64,
    mean_run: u32,
    run_left: u32,
    run_pos: u64,
    rng: StdRng,
}

impl HotCold {
    /// Default mean cold-run length in references (× `align` bytes of
    /// sequential window per excursion).
    pub const DEFAULT_MEAN_RUN: u32 = 48;

    /// Create a hot/cold generator; addresses are aligned to `align` bytes.
    ///
    /// # Panics
    ///
    /// Panics if either region is empty or `p_hot` is outside `[0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        hot_base: u64,
        hot_size: u64,
        cold_base: u64,
        cold_size: u64,
        p_hot: f64,
        align: u64,
        seed: u64,
    ) -> Self {
        Self::with_run(
            hot_base,
            hot_size,
            cold_base,
            cold_size,
            p_hot,
            align,
            Self::DEFAULT_MEAN_RUN,
            seed,
        )
    }

    /// As [`new`](Self::new) with an explicit mean cold-run length
    /// (`mean_run == 1` reproduces fully random cold touches).
    ///
    /// # Panics
    ///
    /// Panics if either region is empty, `p_hot` is outside `[0, 1]`, or
    /// `mean_run` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn with_run(
        hot_base: u64,
        hot_size: u64,
        cold_base: u64,
        cold_size: u64,
        p_hot: f64,
        align: u64,
        mean_run: u32,
        seed: u64,
    ) -> Self {
        assert!(hot_size > 0 && cold_size > 0, "empty region");
        assert!((0.0..=1.0).contains(&p_hot), "p_hot out of range");
        assert!(mean_run > 0, "runs must have positive length");
        HotCold {
            hot_base,
            hot_size,
            cold_base,
            cold_size,
            p_hot,
            align: align.max(1),
            mean_run,
            run_left: 0,
            run_pos: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DataGen for HotCold {
    fn next_addr(&mut self) -> VirtAddr {
        if self.rng.gen::<f64>() < self.p_hot {
            let off = self.rng.gen_range(0..self.hot_size);
            return VirtAddr(self.hot_base + off).align_down(self.align);
        }
        // Cold excursion: continue the current run or start a new one.
        if self.run_left == 0 {
            self.run_pos = self.rng.gen_range(0..self.cold_size);
            // Geometric run length with the configured mean.
            let p = 1.0 / self.mean_run as f64;
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            self.run_left = ((u.ln() / (1.0 - p).ln()).ceil() as u32).max(1);
        }
        let a = VirtAddr(self.cold_base + self.run_pos).align_down(self.align);
        self.run_left -= 1;
        self.run_pos = (self.run_pos + self.align) % self.cold_size;
        a
    }
}

/// Call-stack traffic: references random-walk near the top of a
/// downward-growing stack.
///
/// Models save/restore and local-variable traffic of branchy integer codes:
/// intense reuse of a few hundred bytes, drifting slowly as frames push and
/// pop.
#[derive(Debug, Clone)]
pub struct StackSim {
    top: u64,
    max_depth: u64,
    depth: u64,
    rng: StdRng,
}

impl StackSim {
    /// Create a stack generator below `top` with maximum depth `max_depth`.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is zero or exceeds `top`.
    pub fn new(top: u64, max_depth: u64, seed: u64) -> Self {
        assert!(max_depth > 0, "stack needs depth");
        assert!(max_depth <= top, "stack would underflow address zero");
        StackSim {
            top,
            max_depth,
            depth: 64,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DataGen for StackSim {
    fn next_addr(&mut self) -> VirtAddr {
        // Drift the frame depth: push (grow) or pop (shrink) a frame
        // occasionally, reference within the current frame otherwise.
        match self.rng.gen_range(0..8u32) {
            0 => {
                let frame = 16 * self.rng.gen_range(1..8u64);
                self.depth = (self.depth + frame).min(self.max_depth);
            }
            1 => {
                let frame = 16 * self.rng.gen_range(1..8u64);
                self.depth = self.depth.saturating_sub(frame).max(16);
            }
            _ => {}
        }
        let within = self.rng.gen_range(0..self.depth.min(256));
        VirtAddr(self.top - self.depth + within).align_down(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sweep_walks_sequentially_and_wraps() {
        let mut s = SequentialSweep::new(0x1000, 256, 8);
        let first = s.next_addr();
        assert_eq!(first.0, 0x1000);
        let mut last = first.0;
        for _ in 0..(256 / 8 - 1) {
            let a = s.next_addr().0;
            assert_eq!(a, last + 8, "unit-stride advance");
            last = a;
        }
        assert_eq!(s.next_addr().0, 0x1000, "wraps to base");
    }

    #[test]
    fn sweep_covers_whole_region() {
        let mut s = SequentialSweep::new(0, 1024, 32);
        let mut seen = HashSet::new();
        for _ in 0..(1024 / 32) {
            seen.insert(s.next_addr().0 / 32);
        }
        assert_eq!(seen.len(), 32, "touches every stride slot");
    }

    #[test]
    fn chase_visits_every_node_once_per_cycle() {
        let mut c = PointerChase::new(0x2000, 100, 64, 5);
        let mut seen = HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(c.next_addr().0), "no repeats within a cycle");
        }
        assert_eq!(seen.len(), 100);
        // Second cycle repeats the same set.
        for _ in 0..100 {
            assert!(seen.contains(&c.next_addr().0));
        }
    }

    #[test]
    fn chase_nodes_are_node_size_apart() {
        let mut c = PointerChase::new(0, 16, 128, 9);
        for _ in 0..32 {
            assert_eq!(c.next_addr().0 % 128, 0);
        }
    }

    #[test]
    fn hot_cold_respects_probability_roughly() {
        let mut g = HotCold::new(0x0, 4096, 0x10_0000, 1 << 20, 0.9, 4, 13);
        let mut hot = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            if g.next_addr().0 < 4096 {
                hot += 1;
            }
        }
        let frac = hot as f64 / N as f64;
        assert!((0.88..0.92).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn hot_cold_addresses_stay_in_regions() {
        let mut g = HotCold::new(0x1000, 512, 0x8000, 512, 0.5, 8, 21);
        for _ in 0..1000 {
            let a = g.next_addr().0;
            assert!(
                (0x1000..0x1200).contains(&a) || (0x8000..0x8200).contains(&a),
                "address {a:#x} escaped both regions"
            );
            assert_eq!(a % 8, 0, "alignment respected");
        }
    }

    #[test]
    fn cold_excursions_form_sequential_runs() {
        // p_hot = 0: every ref is cold. Consecutive refs should mostly
        // advance by `align` (runs), with occasional jumps (new runs).
        let mut g = HotCold::with_run(0, 8, 0x10_0000, 1 << 20, 0.0, 8, 32, 5);
        let mut sequential = 0;
        let mut prev = g.next_addr().0;
        const N: usize = 10_000;
        for _ in 0..N {
            let a = g.next_addr().0;
            if a == prev + 8 {
                sequential += 1;
            }
            prev = a;
        }
        let frac = sequential as f64 / N as f64;
        assert!(
            frac > 0.9,
            "mean-32 runs should make >90% of steps sequential, got {frac}"
        );
    }

    #[test]
    fn mean_run_one_is_effectively_random() {
        let mut g = HotCold::with_run(0, 8, 0x10_0000, 1 << 20, 0.0, 8, 1, 5);
        let mut sequential = 0;
        let mut prev = g.next_addr().0;
        for _ in 0..5000 {
            let a = g.next_addr().0;
            if a == prev + 8 {
                sequential += 1;
            }
            prev = a;
        }
        assert!(sequential < 200, "short runs ≈ random: {sequential}");
    }

    #[test]
    fn stack_stays_below_top_within_depth() {
        let mut s = StackSim::new(0x7fff_f000, 64 * 1024, 17);
        for _ in 0..50_000 {
            let a = s.next_addr().0;
            assert!(a < 0x7fff_f000);
            assert!(a >= 0x7fff_f000 - 64 * 1024);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = HotCold::new(0, 4096, 0x10000, 4096, 0.5, 4, 99);
        let mut b = HotCold::new(0, 4096, 0x10000, 4096, 0.5, 4, 99);
        for _ in 0..1000 {
            assert_eq!(a.next_addr(), b.next_addr());
        }
    }
}
