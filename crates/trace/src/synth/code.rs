//! Instruction-fetch generation.

use crate::record::{TraceRecord, VirtAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates instruction fetch addresses over a looping code working set.
///
/// The model is a program whose text segment is `code_size` bytes of 4-byte
/// instructions. The program counter walks forward sequentially; at the end
/// of each basic block (geometric length, mean `mean_block_len`) it either
///
/// * loops back a short distance (probability `p_loop` — inner loops, the
///   dominant behaviour in the paper's FP codes),
/// * calls a random function in the working set (probability `p_call` —
///   branchy integer codes), or
/// * falls through to the next block.
///
/// The result is an instruction stream whose L1-instruction-cache behaviour
/// is governed by `code_size` relative to the 16 KB L1i of the paper's
/// configuration, with realistic run lengths for spatial locality.
#[derive(Debug, Clone)]
pub struct CodeGen {
    base: u64,
    code_size: u64,
    mean_block_len: u32,
    p_loop: f64,
    p_call: f64,
    pc: u64,
    /// Remaining instructions in the current basic block.
    block_left: u32,
    /// Loop context: when looping we return to `loop_start` a few times.
    loop_start: u64,
    loop_trips_left: u32,
    rng: StdRng,
}

impl CodeGen {
    /// Create a code generator.
    ///
    /// # Panics
    ///
    /// Panics if `code_size` is zero or `mean_block_len` is zero, or if the
    /// probabilities are outside `[0, 1]` or sum above 1.
    pub fn new(
        base: u64,
        code_size: u64,
        mean_block_len: u32,
        p_loop: f64,
        p_call: f64,
        seed: u64,
    ) -> Self {
        assert!(code_size >= 4, "code working set must hold an instruction");
        assert!(mean_block_len > 0, "basic blocks must be non-empty");
        assert!((0.0..=1.0).contains(&p_loop) && (0.0..=1.0).contains(&p_call));
        assert!(p_loop + p_call <= 1.0, "branch probabilities exceed 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let block_left = Self::block_len(mean_block_len, &mut rng);
        CodeGen {
            base,
            code_size,
            mean_block_len,
            p_loop,
            p_call,
            pc: base,
            block_left,
            loop_start: base,
            loop_trips_left: 0,
            rng,
        }
    }

    /// Size of the code working set in bytes.
    pub fn code_size(&self) -> u64 {
        self.code_size
    }

    fn block_len(mean: u32, rng: &mut StdRng) -> u32 {
        // Geometric with the given mean, clamped to at least 1.
        let p = 1.0 / mean as f64;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let len = (u.ln() / (1.0 - p).ln()).ceil() as u32;
        len.max(1)
    }

    fn wrap(&self, pc: u64) -> u64 {
        let off = (pc - self.base) % self.code_size;
        self.base + (off & !3)
    }

    /// Produce the next instruction fetch.
    pub fn next_fetch(&mut self) -> TraceRecord {
        let rec = TraceRecord {
            addr: VirtAddr(self.pc),
            kind: crate::AccessKind::InstrFetch,
        };
        // Advance.
        if self.block_left > 1 {
            self.block_left -= 1;
            self.pc = self.wrap(self.pc + 4);
        } else {
            // End of basic block: decide the control transfer.
            if self.loop_trips_left > 0 {
                self.loop_trips_left -= 1;
                self.pc = self.loop_start;
            } else {
                let r: f64 = self.rng.gen();
                if r < self.p_loop {
                    // Begin a loop: jump back a short distance and iterate.
                    let body = 4 * self.rng.gen_range(4..64u64);
                    let start = self.pc.saturating_sub(body).max(self.base);
                    self.loop_start = self.wrap(start);
                    self.loop_trips_left = self.rng.gen_range(4..128);
                    self.pc = self.loop_start;
                } else if r < self.p_loop + self.p_call {
                    // Call a random function somewhere in the working set.
                    let target = self.base + 4 * self.rng.gen_range(0..self.code_size / 4);
                    self.pc = self.wrap(target);
                } else {
                    self.pc = self.wrap(self.pc + 4);
                }
            }
            self.block_left = Self::block_len(self.mean_block_len, &mut self.rng);
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessKind;
    use std::collections::HashSet;

    #[test]
    fn fetches_stay_in_working_set_and_aligned() {
        let mut g = CodeGen::new(0x40_0000, 64 * 1024, 6, 0.4, 0.1, 7);
        for _ in 0..100_000 {
            let r = g.next_fetch();
            assert_eq!(r.kind, AccessKind::InstrFetch);
            assert!(r.addr.0 >= 0x40_0000);
            assert!(r.addr.0 < 0x40_0000 + 64 * 1024);
            assert_eq!(r.addr.0 % 4, 0, "instructions are word aligned");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = CodeGen::new(0x40_0000, 32 * 1024, 6, 0.4, 0.1, 11);
        let mut b = CodeGen::new(0x40_0000, 32 * 1024, 6, 0.4, 0.1, 11);
        for _ in 0..10_000 {
            assert_eq!(a.next_fetch(), b.next_fetch());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = CodeGen::new(0x40_0000, 32 * 1024, 6, 0.4, 0.1, 1);
        let mut b = CodeGen::new(0x40_0000, 32 * 1024, 6, 0.4, 0.1, 2);
        let mut same = 0;
        for _ in 0..1000 {
            if a.next_fetch() == b.next_fetch() {
                same += 1;
            }
        }
        assert!(same < 1000, "streams should diverge");
    }

    #[test]
    fn loops_create_temporal_locality() {
        // With a strong loop probability, the footprint visited in a window
        // should be much smaller than pure sequential walking.
        let mut g = CodeGen::new(0x40_0000, 1 << 20, 6, 0.8, 0.0, 3);
        let mut pages = HashSet::new();
        for _ in 0..50_000 {
            pages.insert(g.next_fetch().addr.page_number(4096));
        }
        // Sequential walking would touch ~48 pages; loops revisit.
        assert!(
            pages.len() < 40,
            "expected loopy reuse, footprint {} pages",
            pages.len()
        );
    }

    #[test]
    #[should_panic(expected = "branch probabilities")]
    fn rejects_bad_probabilities() {
        let _ = CodeGen::new(0, 1024, 6, 0.9, 0.2, 0);
    }
}
