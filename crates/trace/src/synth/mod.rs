//! Synthetic workload generators.
//!
//! These generators stand in for the Tracebase R2000 traces used by the
//! paper (see `DESIGN.md` §4). Each produces a deterministic, seeded stream
//! of [`TraceRecord`]s with a controlled locality structure:
//!
//! * [`CodeGen`] — instruction fetches over a looping code working set;
//! * [`SequentialSweep`] — unit-or-strided array streaming (high spatial
//!   locality, the pattern that favours large blocks/pages);
//! * [`PointerChase`] — a dependent chase over a shuffled node pool (low
//!   spatial locality, the pattern that punishes large blocks);
//! * [`HotCold`] — a hot set with occasional cold excursions (temporal
//!   locality knob);
//! * [`StackSim`] — call-stack push/pop traffic near the stack top;
//! * [`BenchmarkSynth`] — the per-benchmark mixer combining the above to
//!   hit a target instruction-fetch fraction and write ratio.
//!
//! [`TraceRecord`]: crate::TraceRecord

mod code;
mod data;
mod mix;

pub use code::CodeGen;
pub use data::{DataGen, HotCold, PointerChase, SequentialSweep, StackSim};
pub use mix::{BenchmarkSynth, MixSpec, WeightedData};

/// Conventional virtual-address-space layout used by all generators.
///
/// One layout is shared by every synthetic process; the simulator keys
/// translation on the ASID so identical layouts do not alias.
pub mod layout {
    /// Base of the code (text) segment.
    pub const CODE_BASE: u64 = 0x0040_0000;
    /// Base of initialized globals.
    pub const GLOBAL_BASE: u64 = 0x1000_0000;
    /// Base of the heap region.
    pub const HEAP_BASE: u64 = 0x4000_0000;
    /// Top of the downward-growing stack.
    pub const STACK_TOP: u64 = 0x7fff_f000;
}
