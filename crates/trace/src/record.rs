//! The basic unit of a trace: one memory reference.

use std::fmt;

/// A virtual address within one process's address space.
///
/// The simulator treats addresses as opaque 64-bit values; generators in
/// this crate stay below 2^32 to match the 32-bit R2000 traces the paper
/// used.
///
/// ```
/// use rampage_trace::VirtAddr;
/// let a = VirtAddr(0x0040_0000);
/// assert_eq!(a.page_number(4096), 0x400);
/// assert_eq!(a.page_offset(4096), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Virtual page number for a given page size in bytes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `page_size` is not a power of two.
    #[inline]
    pub fn page_number(self, page_size: u64) -> u64 {
        debug_assert!(page_size.is_power_of_two());
        self.0 >> page_size.trailing_zeros()
    }

    /// Byte offset within the page for a given page size in bytes.
    #[inline]
    pub fn page_offset(self, page_size: u64) -> u64 {
        debug_assert!(page_size.is_power_of_two());
        self.0 & (page_size - 1)
    }

    /// The address rounded down to a multiple of `align` (a power of two).
    #[inline]
    pub fn align_down(self, align: u64) -> VirtAddr {
        debug_assert!(align.is_power_of_two());
        VirtAddr(self.0 & !(align - 1))
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(v: u64) -> Self {
        VirtAddr(v)
    }
}

/// An address-space identifier: one per simulated process.
///
/// Translation structures (TLB, inverted page table) key on
/// `(Asid, virtual page number)` so that processes with identical virtual
/// layouts do not alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asid(pub u16);

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid{}", self.0)
    }
}

/// What kind of memory reference a trace record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An instruction fetch (goes to the L1 instruction cache).
    InstrFetch,
    /// A data load (goes to the L1 data cache).
    Read,
    /// A data store (goes to the L1 data cache; write-allocate).
    Write,
}

impl AccessKind {
    /// True for `Read` and `Write`.
    #[inline]
    pub fn is_data(self) -> bool {
        !matches!(self, AccessKind::InstrFetch)
    }

    /// True only for `Write`.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::InstrFetch => "ifetch",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        f.write_str(s)
    }
}

/// One memory reference: an address plus the kind of access.
///
/// Records carry no timestamp; the simulator is trace-driven and assigns
/// time as it processes each reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Virtual address referenced.
    pub addr: VirtAddr,
    /// Fetch / read / write.
    pub kind: AccessKind,
}

impl TraceRecord {
    /// Convenience constructor for an instruction fetch.
    #[inline]
    pub fn fetch(addr: u64) -> Self {
        TraceRecord {
            addr: VirtAddr(addr),
            kind: AccessKind::InstrFetch,
        }
    }

    /// Convenience constructor for a data load.
    #[inline]
    pub fn read(addr: u64) -> Self {
        TraceRecord {
            addr: VirtAddr(addr),
            kind: AccessKind::Read,
        }
    }

    /// Convenience constructor for a data store.
    #[inline]
    pub fn write(addr: u64) -> Self {
        TraceRecord {
            addr: VirtAddr(addr),
            kind: AccessKind::Write,
        }
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_number_and_offset_roundtrip() {
        let a = VirtAddr(0x1234_5678);
        let ps = 4096;
        assert_eq!(a.page_number(ps) * ps + a.page_offset(ps), a.0);
    }

    #[test]
    fn page_math_small_pages() {
        let a = VirtAddr(0x1000 + 130);
        assert_eq!(a.page_number(128), 0x1000 / 128 + 1);
        assert_eq!(a.page_offset(128), 2);
    }

    #[test]
    fn align_down_masks_low_bits() {
        assert_eq!(VirtAddr(0x1234_5678).align_down(32), VirtAddr(0x1234_5660));
        assert_eq!(VirtAddr(0x20).align_down(32), VirtAddr(0x20));
        assert_eq!(VirtAddr(0x1f).align_down(32), VirtAddr(0));
    }

    #[test]
    fn kind_predicates() {
        assert!(!AccessKind::InstrFetch.is_data());
        assert!(AccessKind::Read.is_data());
        assert!(AccessKind::Write.is_data());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(TraceRecord::fetch(4).kind, AccessKind::InstrFetch);
        assert_eq!(TraceRecord::read(4).kind, AccessKind::Read);
        assert_eq!(TraceRecord::write(4).kind, AccessKind::Write);
        assert_eq!(TraceRecord::write(4).addr, VirtAddr(4));
    }

    #[test]
    fn display_formats() {
        let r = TraceRecord::read(0x40);
        assert_eq!(r.to_string(), "read 0x00000040");
        assert_eq!(Asid(3).to_string(), "asid3");
    }
}
