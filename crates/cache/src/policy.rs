//! Replacement policies for set-associative caches.

use std::fmt;

/// Which block of a set to evict on a miss.
///
/// The paper's baseline L2 is direct-mapped (policy irrelevant); its 2-way
/// "more realistic" L2 uses random replacement (§4.7); the TLB in
/// `rampage-vm` also uses random replacement (§4.3). LRU and FIFO are
/// provided for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way.
    Lru,
    /// Evict a uniformly random way (paper's choice for 2-way L2 and TLB).
    Random,
    /// Evict the way filled longest ago.
    Fifo,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Random => "random",
            ReplacementPolicy::Fifo => "FIFO",
        };
        f.write_str(s)
    }
}

/// Per-set replacement metadata: a monotone stamp per way.
///
/// * LRU — stamp is the last-touch time; evict the minimum.
/// * FIFO — stamp is the fill time; evict the minimum.
/// * Random — stamps unused; the cache's RNG picks the way.
#[derive(Debug, Clone, Default)]
pub(crate) struct SetMeta {
    pub stamps: Vec<u64>,
}

impl SetMeta {
    pub fn new(ways: u32) -> Self {
        SetMeta {
            stamps: vec![0; ways as usize],
        }
    }

    /// Way with the smallest stamp (LRU/FIFO victim among valid ways).
    /// [`Geometry`](crate::Geometry) guarantees at least one way, so the
    /// zero-way fallback of 0 is unreachable in practice.
    pub fn oldest(&self) -> usize {
        self.stamps
            .iter()
            .enumerate()
            .min_by_key(|(_, &s)| s)
            .map_or(0, |(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oldest_picks_min_stamp() {
        let mut m = SetMeta::new(4);
        m.stamps = vec![5, 2, 9, 2];
        assert_eq!(m.oldest(), 1, "first minimum wins ties");
    }

    #[test]
    fn display_names() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "LRU");
        assert_eq!(ReplacementPolicy::Random.to_string(), "random");
        assert_eq!(ReplacementPolicy::Fifo.to_string(), "FIFO");
    }
}
