//! Physical addresses.

use std::fmt;

/// A physical address.
///
/// In the conventional hierarchy this addresses DRAM; in the RAMpage
/// hierarchy it addresses the SRAM main memory. Keeping it a distinct type
/// from `rampage_trace::VirtAddr` means translation can never be skipped by
/// accident — caches only accept [`PhysAddr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The address rounded down to a multiple of `align` (a power of two).
    #[inline]
    pub fn align_down(self, align: u64) -> PhysAddr {
        debug_assert!(align.is_power_of_two());
        PhysAddr(self.0 & !(align - 1))
    }

    /// Block number for a given block size in bytes (a power of two).
    #[inline]
    pub fn block_number(self, block_size: u64) -> u64 {
        debug_assert!(block_size.is_power_of_two());
        self.0 >> block_size.trailing_zeros()
    }

    /// Byte offset within the block.
    #[inline]
    pub fn block_offset(self, block_size: u64) -> u64 {
        debug_assert!(block_size.is_power_of_two());
        self.0 & (block_size - 1)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_math() {
        let a = PhysAddr(0x1234);
        assert_eq!(a.block_number(32), 0x1234 / 32);
        assert_eq!(a.block_offset(32), 0x1234 % 32);
        assert_eq!(a.align_down(32).0, 0x1220);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PhysAddr(0x40).to_string(), "0x00000040");
    }
}
