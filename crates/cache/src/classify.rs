//! The 3C miss classification (compulsory / capacity / conflict).
//!
//! Hill's classic taxonomy, via Hennessy & Patterson (which the paper
//! cites as [HP96]): a miss is *compulsory* if the block was never seen
//! before, *capacity* if a fully-associative LRU cache of the same size
//! would also have missed, and *conflict* otherwise. Conflict misses are
//! precisely what RAMpage's full associativity removes, so this
//! classifier quantifies the paper's core mechanism.

use crate::addr::PhysAddr;
use crate::cache::Cache;
use crate::geometry::Geometry;
use crate::policy::ReplacementPolicy;
use std::collections::{BTreeMap, HashMap, HashSet};

/// The class of one miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First-ever reference to the block (cold).
    Compulsory,
    /// A fully-associative cache of equal size would also miss.
    Capacity,
    /// Only the restricted mapping misses (what associativity removes).
    Conflict,
}

/// Counts per class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissProfile {
    /// Hits observed.
    pub hits: u64,
    /// Cold misses.
    pub compulsory: u64,
    /// Capacity misses.
    pub capacity: u64,
    /// Conflict misses.
    pub conflict: u64,
}

impl MissProfile {
    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Fraction of misses that are conflicts (0 for no misses) — the
    /// share of misses full associativity would eliminate.
    pub fn conflict_share(&self) -> f64 {
        let m = self.misses();
        if m == 0 {
            0.0
        } else {
            self.conflict as f64 / m as f64
        }
    }
}

/// The shadow structures that classify misses of *any* cache of a given
/// capacity: a seen-set (compulsory detection) and an exact
/// fully-associative LRU cache of equal capacity (capacity detection),
/// tracked as a timestamped map.
///
/// The LRU shadow is a dual index: `shadow` answers membership, and
/// `by_stamp` orders blocks by last touch so eviction takes the true
/// oldest in O(log n) — with no dependence on hash iteration order
/// (stamps are unique, so the BTreeMap ordering is total).
///
/// Use this directly to classify an existing cache's misses (the
/// simulator's conventional system does, when diagnosis is enabled), or
/// via [`MissClassifier`] for a self-contained cache-plus-classifier.
#[derive(Debug)]
pub struct ShadowTracker {
    block_size: u64,
    /// Blocks ever touched (for compulsory detection).
    seen: HashSet<u64>,
    /// Fully-associative LRU shadow: block number → last-touch stamp.
    shadow: HashMap<u64, u64>,
    /// Mirror of `shadow` keyed by stamp: the first entry is the LRU
    /// block.
    by_stamp: BTreeMap<u64, u64>,
    capacity: usize,
    stamp: u64,
    profile: MissProfile,
}

impl ShadowTracker {
    /// A tracker for a cache of `capacity` blocks of `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `block_size` is not a power of two.
    pub fn new(capacity: usize, block_size: u64) -> Self {
        assert!(capacity > 0, "shadow needs capacity");
        assert!(block_size.is_power_of_two(), "block size");
        ShadowTracker {
            block_size,
            seen: HashSet::new(),
            shadow: HashMap::new(),
            by_stamp: BTreeMap::new(),
            capacity,
            stamp: 0,
            profile: MissProfile::default(),
        }
    }

    /// Observe one access to the real cache and its hit/miss outcome;
    /// returns the class of a miss.
    pub fn observe(&mut self, addr: PhysAddr, real_hit: bool) -> Option<MissClass> {
        let block = addr.block_number(self.block_size);
        self.stamp += 1;
        let prev_stamp = self.shadow.insert(block, self.stamp);
        let shadow_hit = prev_stamp.is_some();
        if let Some(old) = prev_stamp {
            self.by_stamp.remove(&old);
        }
        self.by_stamp.insert(self.stamp, block);
        if !shadow_hit && self.shadow.len() > self.capacity {
            // The first by_stamp entry is the least-recently-touched
            // block; evicting through it keeps the shadow exact without
            // ever walking the hash map.
            if let Some((&oldest_stamp, &oldest_block)) = self.by_stamp.first_key_value() {
                self.by_stamp.remove(&oldest_stamp);
                self.shadow.remove(&oldest_block);
            }
        }
        if real_hit {
            self.profile.hits += 1;
            return None;
        }
        let class = if self.seen.insert(block) {
            self.profile.compulsory += 1;
            MissClass::Compulsory
        } else if !shadow_hit {
            self.profile.capacity += 1;
            MissClass::Capacity
        } else {
            self.profile.conflict += 1;
            MissClass::Conflict
        };
        Some(class)
    }

    /// The classification so far.
    pub fn profile(&self) -> MissProfile {
        self.profile
    }
}

/// A cache under study plus the shadow structures that classify its
/// misses.
///
/// ```
/// use rampage_cache::{Geometry, MissClassifier, PhysAddr, ReplacementPolicy};
/// let geo = Geometry::new(1024, 32, 1).unwrap();
/// let mut mc = MissClassifier::new(geo, ReplacementPolicy::Lru);
/// mc.access(PhysAddr(0), false);      // compulsory
/// mc.access(PhysAddr(1024), false);   // compulsory (conflicts with 0)
/// mc.access(PhysAddr(0), false);      // conflict: FA cache still holds it
/// assert_eq!(mc.profile().conflict, 1);
/// ```
#[derive(Debug)]
pub struct MissClassifier {
    cache: Cache,
    tracker: ShadowTracker,
}

impl MissClassifier {
    /// Wrap a cache of the given geometry/policy with its classifier.
    pub fn new(geo: Geometry, policy: ReplacementPolicy) -> Self {
        MissClassifier {
            cache: Cache::new(geo, policy),
            tracker: ShadowTracker::new(geo.blocks() as usize, geo.block()),
        }
    }

    /// Access the cache, classifying any miss. Returns the class, or
    /// `None` on a hit.
    pub fn access(&mut self, addr: PhysAddr, is_write: bool) -> Option<MissClass> {
        let res = self.cache.access(addr, is_write);
        self.tracker.observe(addr, res.hit)
    }

    /// The classification so far.
    pub fn profile(&self) -> MissProfile {
        self.tracker.profile()
    }

    /// The cache under study.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(size: u64, block: u64) -> MissClassifier {
        MissClassifier::new(
            Geometry::new(size, block, 1).unwrap(),
            ReplacementPolicy::Lru,
        )
    }

    #[test]
    fn first_touch_is_compulsory() {
        let mut mc = dm(1024, 32);
        assert_eq!(mc.access(PhysAddr(0), false), Some(MissClass::Compulsory));
        assert_eq!(mc.access(PhysAddr(0), false), None, "then hits");
        assert_eq!(mc.profile().hits, 1);
    }

    #[test]
    fn ping_pong_in_one_set_is_conflict() {
        let mut mc = dm(1024, 32);
        mc.access(PhysAddr(0), false); // compulsory
        mc.access(PhysAddr(1024), false); // compulsory, evicts 0 in DM
                                          // Both fit easily in a 32-block FA cache, so these are conflicts.
        assert_eq!(mc.access(PhysAddr(0), false), Some(MissClass::Conflict));
        assert_eq!(mc.access(PhysAddr(1024), false), Some(MissClass::Conflict));
        assert_eq!(mc.profile().conflict, 2);
        assert!((mc.profile().conflict_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn streaming_past_capacity_is_capacity() {
        // 4-block cache; stream 8 blocks twice: second pass misses even
        // fully-associatively.
        let mut mc = dm(128, 32);
        for _ in 0..2 {
            for i in 0..8u64 {
                mc.access(PhysAddr(i * 32), false);
            }
        }
        let p = mc.profile();
        assert_eq!(p.compulsory, 8);
        assert!(p.capacity >= 7, "second sweep re-misses: {p:?}");
        assert_eq!(p.hits, 0);
    }

    #[test]
    fn associativity_turns_conflicts_into_hits() {
        // Same ping-pong, 2-way: no misses after the cold ones.
        let mut mc =
            MissClassifier::new(Geometry::new(1024, 32, 2).unwrap(), ReplacementPolicy::Lru);
        mc.access(PhysAddr(0), false);
        mc.access(PhysAddr(1024), false);
        assert_eq!(mc.access(PhysAddr(0), false), None);
        assert_eq!(mc.access(PhysAddr(1024), false), None);
        assert_eq!(mc.profile().conflict, 0);
    }

    #[test]
    fn profile_totals_are_consistent() {
        let mut mc = dm(256, 32);
        for i in 0..1000u64 {
            mc.access(PhysAddr((i * 7919) % 4096), i % 3 == 0);
        }
        let p = mc.profile();
        assert_eq!(p.hits + p.misses(), 1000);
        assert_eq!(p.misses(), mc.cache().stats().misses());
    }

    #[test]
    fn empty_profile_conflict_share_is_zero() {
        assert_eq!(MissProfile::default().conflict_share(), 0.0);
    }
}
