//! The set-associative cache model.

use crate::addr::PhysAddr;
use crate::geometry::Geometry;
use crate::policy::{ReplacementPolicy, SetMeta};
use crate::stats::CacheStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A block leaving the cache: its base address and whether it was dirty
/// (needs a write-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Base physical address of the evicted block.
    pub addr: PhysAddr,
    /// True if the block was modified and must be written back.
    pub dirty: bool,
}

/// Outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the block was present.
    pub hit: bool,
    /// On a miss, the valid block displaced by the fill (if any).
    pub eviction: Option<Eviction>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
}

/// A write-back, write-allocate, set-associative cache.
///
/// Purely behavioural: tracks presence and dirtiness, reports hits,
/// misses and evictions; the simulator charges times around these
/// outcomes. Lookups are by physical address.
///
/// Misses allocate immediately (the fill is implicit), returning any
/// displaced valid block so the caller can model the write-back.
#[derive(Debug)]
pub struct Cache {
    geo: Geometry,
    lines: Vec<Line>,
    meta: Vec<SetMeta>,
    policy: ReplacementPolicy,
    rng: StdRng,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Create a cache with the given geometry and replacement policy
    /// (random replacement seeded with a fixed default; see
    /// [`Cache::with_seed`] to vary it).
    pub fn new(geo: Geometry, policy: ReplacementPolicy) -> Self {
        Cache::with_seed(geo, policy, 0x5eed_cafe)
    }

    /// As [`Cache::new`] but with an explicit RNG seed for the random
    /// replacement policy, so experiments stay reproducible.
    pub fn with_seed(geo: Geometry, policy: ReplacementPolicy, seed: u64) -> Self {
        let sets = geo.sets() as usize;
        let ways = geo.ways();
        Cache {
            geo,
            lines: vec![Line::default(); sets * ways as usize],
            meta: (0..sets).map(|_| SetMeta::new(ways)).collect(),
            policy,
            rng: StdRng::seed_from_u64(seed),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zero the statistics (e.g. after cache warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_of(&self, addr: PhysAddr) -> usize {
        self.geo.set_index(addr) as usize
    }

    #[inline]
    fn line_index(&self, set: usize, way: usize) -> usize {
        set * self.geo.ways() as usize + way
    }

    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let ways = self.geo.ways() as usize;
        (0..ways).find(|&w| {
            let l = &self.lines[self.line_index(set, w)];
            l.valid && l.tag == tag
        })
    }

    fn pick_victim(&mut self, set: usize) -> usize {
        let ways = self.geo.ways() as usize;
        // Invalid way first: no eviction needed.
        if let Some(w) = (0..ways).find(|&w| !self.lines[self.line_index(set, w)].valid) {
            return w;
        }
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => self.meta[set].oldest(),
            ReplacementPolicy::Random => self.rng.gen_range(0..ways),
        }
    }

    /// Access the block containing `addr`; allocate it on a miss.
    ///
    /// Returns whether it hit and, on a miss, the valid block that the
    /// fill displaced (with its dirty flag, so the caller can charge a
    /// write-back).
    pub fn access(&mut self, addr: PhysAddr, is_write: bool) -> AccessResult {
        self.clock += 1;
        let set = self.set_of(addr);
        let tag = self.geo.tag(addr);
        if let Some(way) = self.find_way(set, tag) {
            let idx = self.line_index(set, way);
            if is_write {
                self.lines[idx].dirty = true;
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            if self.policy == ReplacementPolicy::Lru {
                self.meta[set].stamps[way] = self.clock;
            }
            return AccessResult {
                hit: true,
                eviction: None,
            };
        }
        // Miss: allocate (write-allocate policy for writes too).
        if is_write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }
        let way = self.pick_victim(set);
        let idx = self.line_index(set, way);
        let old = self.lines[idx];
        let eviction = old.valid.then(|| {
            if old.dirty {
                self.stats.writebacks += 1;
            }
            Eviction {
                addr: self.geo.block_base(set as u64, old.tag),
                dirty: old.dirty,
            }
        });
        self.lines[idx] = Line {
            tag,
            valid: true,
            dirty: is_write,
        };
        // LRU and FIFO both stamp at fill time.
        self.meta[set].stamps[way] = self.clock;
        AccessResult {
            hit: false,
            eviction,
        }
    }

    /// Mark the block containing `addr` dirty without counting an
    /// access (used when a swap from a victim buffer restores a dirty
    /// block). Returns whether the block was present.
    pub fn mark_dirty(&mut self, addr: PhysAddr) -> bool {
        let set = self.set_of(addr);
        match self.find_way(set, self.geo.tag(addr)) {
            Some(way) => {
                let idx = self.line_index(set, way);
                self.lines[idx].dirty = true;
                true
            }
            None => false,
        }
    }

    /// Check presence without changing any state.
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let set = self.set_of(addr);
        self.find_way(set, self.geo.tag(addr)).is_some()
    }

    /// Whether the block containing `addr` is present and dirty.
    pub fn is_dirty(&self, addr: PhysAddr) -> bool {
        let set = self.set_of(addr);
        self.find_way(set, self.geo.tag(addr))
            .map(|w| self.lines[self.line_index(set, w)].dirty)
            .unwrap_or(false)
    }

    /// Invalidate the block containing `addr` if present, returning it.
    ///
    /// Used for inclusion maintenance (L2 replacement invalidates the
    /// L1 blocks it covered) and RAMpage page replacement (SRAM frame
    /// reuse invalidates L1 blocks of the outgoing page). A returned
    /// dirty eviction must be written back by the caller.
    pub fn invalidate_block(&mut self, addr: PhysAddr) -> Option<Eviction> {
        let set = self.set_of(addr);
        let way = self.find_way(set, self.geo.tag(addr))?;
        let idx = self.line_index(set, way);
        let line = self.lines[idx];
        self.lines[idx].valid = false;
        self.lines[idx].dirty = false;
        self.stats.invalidations += 1;
        Some(Eviction {
            addr: self.geo.block_base(set as u64, line.tag),
            dirty: line.dirty,
        })
    }

    /// Invalidate every block of this cache that falls in
    /// `[base, base + len)`, calling `on_evict` for each block that was
    /// present. Returns the number of block-sized probes performed (the
    /// caller charges its hit time per probe, per the paper's inclusion
    /// accounting).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `base` is not block-aligned.
    pub fn invalidate_region(
        &mut self,
        base: PhysAddr,
        len: u64,
        mut on_evict: impl FnMut(Eviction),
    ) -> u64 {
        let block = self.geo.block();
        debug_assert_eq!(base.block_offset(block), 0, "unaligned region base");
        let mut probes = 0;
        let mut a = base.0;
        let end = base.0 + len;
        while a < end {
            probes += 1;
            if let Some(ev) = self.invalidate_block(PhysAddr(a)) {
                on_evict(ev);
            }
            a += block;
        }
        probes
    }

    /// Invalidate everything, returning all dirty blocks (for drain /
    /// teardown paths; not used on the simulator fast path).
    pub fn flush(&mut self) -> Vec<Eviction> {
        let mut dirty = Vec::new();
        let sets = self.geo.sets() as usize;
        let ways = self.geo.ways() as usize;
        for set in 0..sets {
            for way in 0..ways {
                let idx = self.line_index(set, way);
                let line = self.lines[idx];
                if line.valid {
                    if line.dirty {
                        dirty.push(Eviction {
                            addr: self.geo.block_base(set as u64, line.tag),
                            dirty: true,
                        });
                    }
                    self.lines[idx].valid = false;
                    self.lines[idx].dirty = false;
                    self.stats.invalidations += 1;
                }
            }
        }
        dirty
    }

    /// Number of valid blocks currently held.
    pub fn occupancy(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm_cache(size: u64, block: u64) -> Cache {
        Cache::new(
            Geometry::new(size, block, 1).unwrap(),
            ReplacementPolicy::Lru,
        )
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = dm_cache(1024, 32);
        assert!(!c.access(PhysAddr(0x40), false).hit);
        assert!(c.access(PhysAddr(0x40), false).hit);
        assert!(c.access(PhysAddr(0x5f), false).hit, "same block hits");
        assert!(!c.access(PhysAddr(0x60), false).hit, "next block misses");
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = dm_cache(1024, 32);
        assert!(!c.access(PhysAddr(0), false).hit);
        // Same index (1024 bytes apart), different tag.
        let r = c.access(PhysAddr(1024), false);
        assert!(!r.hit);
        assert_eq!(
            r.eviction,
            Some(Eviction {
                addr: PhysAddr(0),
                dirty: false
            })
        );
        assert!(!c.access(PhysAddr(0), false).hit, "original was evicted");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = dm_cache(1024, 32);
        c.access(PhysAddr(0), true); // write-allocate, dirty
        let r = c.access(PhysAddr(1024), false);
        assert_eq!(
            r.eviction,
            Some(Eviction {
                addr: PhysAddr(0),
                dirty: true
            })
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = dm_cache(1024, 32);
        c.access(PhysAddr(0), false);
        assert!(!c.is_dirty(PhysAddr(0)));
        c.access(PhysAddr(4), true);
        assert!(c.is_dirty(PhysAddr(0)));
    }

    #[test]
    fn two_way_lru_keeps_recent() {
        let geo = Geometry::new(128, 32, 2).unwrap(); // 2 sets, 2 ways
        let mut c = Cache::new(geo, ReplacementPolicy::Lru);
        // Fill both ways of set 0: blocks 0 and 128.
        c.access(PhysAddr(0), false);
        c.access(PhysAddr(128), false);
        // Touch block 0 so block 128 is LRU.
        c.access(PhysAddr(0), false);
        // New conflicting block evicts 128, not 0.
        let r = c.access(PhysAddr(256), false);
        assert_eq!(r.eviction.unwrap().addr, PhysAddr(128));
        assert!(c.probe(PhysAddr(0)));
    }

    #[test]
    fn fifo_evicts_oldest_fill_even_if_touched() {
        let geo = Geometry::new(128, 32, 2).unwrap();
        let mut c = Cache::new(geo, ReplacementPolicy::Fifo);
        c.access(PhysAddr(0), false);
        c.access(PhysAddr(128), false);
        c.access(PhysAddr(0), false); // touch; FIFO ignores it
        let r = c.access(PhysAddr(256), false);
        assert_eq!(r.eviction.unwrap().addr, PhysAddr(0));
    }

    #[test]
    fn random_replacement_is_seeded_deterministic() {
        let geo = Geometry::new(256, 32, 2).unwrap();
        let mut a = Cache::with_seed(geo, ReplacementPolicy::Random, 42);
        let mut b = Cache::with_seed(geo, ReplacementPolicy::Random, 42);
        for i in 0..100u64 {
            let addr = PhysAddr((i * 7919) % 4096);
            assert_eq!(a.access(addr, i % 3 == 0), b.access(addr, i % 3 == 0));
        }
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = dm_cache(1024, 32);
        assert!(!c.probe(PhysAddr(0)));
        let before = c.stats();
        assert!(!c.probe(PhysAddr(0)));
        assert_eq!(c.stats(), before);
        c.access(PhysAddr(0), false);
        assert!(c.probe(PhysAddr(0)));
    }

    #[test]
    fn mark_dirty_without_access_accounting() {
        let mut c = dm_cache(1024, 32);
        c.access(PhysAddr(0), false);
        let stats_before = c.stats();
        assert!(c.mark_dirty(PhysAddr(4)));
        assert!(c.is_dirty(PhysAddr(0)));
        assert_eq!(c.stats(), stats_before, "no access counted");
        assert!(!c.mark_dirty(PhysAddr(0x100)), "absent block");
    }

    #[test]
    fn invalidate_block_returns_dirtiness() {
        let mut c = dm_cache(1024, 32);
        c.access(PhysAddr(0), true);
        let ev = c.invalidate_block(PhysAddr(0)).unwrap();
        assert!(ev.dirty);
        assert!(!c.probe(PhysAddr(0)));
        assert_eq!(c.invalidate_block(PhysAddr(0)), None, "already gone");
    }

    #[test]
    fn invalidate_region_probes_every_block() {
        let mut c = dm_cache(4096, 32);
        // Fill 4 blocks of a 256-byte region.
        for i in 0..4u64 {
            c.access(PhysAddr(0x100 + i * 32), i % 2 == 0);
        }
        let mut evicted = Vec::new();
        let probes = c.invalidate_region(PhysAddr(0x100), 256, |e| evicted.push(e));
        assert_eq!(probes, 8, "256 bytes / 32-byte blocks");
        assert_eq!(evicted.len(), 4);
        assert_eq!(evicted.iter().filter(|e| e.dirty).count(), 2);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn flush_returns_only_dirty_blocks() {
        let mut c = dm_cache(1024, 32);
        c.access(PhysAddr(0), false);
        c.access(PhysAddr(32), true);
        c.access(PhysAddr(64), true);
        let dirty = c.flush();
        assert_eq!(dirty.len(), 2);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn occupancy_tracks_valid_blocks() {
        let mut c = dm_cache(1024, 32);
        assert_eq!(c.occupancy(), 0);
        for i in 0..10u64 {
            c.access(PhysAddr(i * 32), false);
        }
        assert_eq!(c.occupancy(), 10);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = dm_cache(1024, 32);
        c.access(PhysAddr(0), false); // read miss
        c.access(PhysAddr(0), false); // read hit
        c.access(PhysAddr(0), true); // write hit
        c.access(PhysAddr(32), true); // write miss
        let s = c.stats();
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.write_hits, 1);
        assert_eq!(s.write_misses, 1);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
    }
}
