//! Cache size/block/way arithmetic.

use crate::addr::PhysAddr;
use std::fmt;

/// Errors from [`Geometry::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// A parameter was zero or not a power of two.
    NotPowerOfTwo(&'static str),
    /// `size / (block * ways)` left no sets (cache smaller than one way).
    TooSmall,
    /// Ways × block exceeds total size.
    Inconsistent,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NotPowerOfTwo(what) => {
                write!(f, "{what} must be a non-zero power of two")
            }
            GeometryError::TooSmall => write!(f, "cache holds less than one block per way"),
            GeometryError::Inconsistent => write!(f, "ways x block size exceeds cache size"),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Validated cache geometry: total size, block size and associativity.
///
/// All three are powers of two; the number of sets follows. A 1-way
/// geometry is a direct-mapped cache; `ways == blocks()` is fully
/// associative.
///
/// ```
/// use rampage_cache::Geometry;
/// let g = Geometry::new(4 << 20, 128, 2).unwrap();
/// assert_eq!(g.sets(), (4 << 20) / 128 / 2);
/// assert_eq!(g.blocks(), (4 << 20) / 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    size: u64,
    block: u64,
    ways: u32,
}

impl Geometry {
    /// Create a geometry of `size` bytes total, `block`-byte blocks and
    /// `ways`-way associativity.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if any parameter is zero or not a power
    /// of two, or if the combination leaves no complete set.
    pub fn new(size: u64, block: u64, ways: u32) -> Result<Self, GeometryError> {
        if size == 0 || !size.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo("cache size"));
        }
        if block == 0 || !block.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo("block size"));
        }
        if ways == 0 || !ways.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo("ways"));
        }
        let way_bytes = block
            .checked_mul(ways as u64)
            .ok_or(GeometryError::Inconsistent)?;
        if way_bytes > size {
            return Err(GeometryError::Inconsistent);
        }
        if size / way_bytes == 0 {
            return Err(GeometryError::TooSmall);
        }
        Ok(Geometry { size, block, ways })
    }

    /// Fully-associative geometry: a single set of `size / block` ways.
    ///
    /// # Errors
    ///
    /// As [`Geometry::new`]; also fails if `size / block` exceeds `u32`.
    pub fn fully_associative(size: u64, block: u64) -> Result<Self, GeometryError> {
        if block == 0 || !block.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo("block size"));
        }
        let ways = u32::try_from(size / block).map_err(|_| GeometryError::Inconsistent)?;
        Geometry::new(size, block, ways)
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Block (line) size in bytes.
    #[inline]
    pub fn block(&self) -> u64 {
        self.block
    }

    /// Associativity.
    #[inline]
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> u64 {
        self.size / (self.block * self.ways as u64)
    }

    /// Total number of blocks (lines).
    #[inline]
    pub fn blocks(&self) -> u64 {
        self.size / self.block
    }

    /// Set index for an address.
    #[inline]
    pub fn set_index(&self, addr: PhysAddr) -> u64 {
        (addr.0 >> self.block.trailing_zeros()) & (self.sets() - 1)
    }

    /// Tag for an address (the block number bits above the index).
    #[inline]
    pub fn tag(&self, addr: PhysAddr) -> u64 {
        (addr.0 >> self.block.trailing_zeros()) / self.sets()
    }

    /// Reconstruct the base address of a block from its set and tag.
    #[inline]
    pub fn block_base(&self, set: u64, tag: u64) -> PhysAddr {
        PhysAddr((tag * self.sets() + set) << self.block.trailing_zeros())
    }

    /// Bytes of tag + state storage a hardware implementation would need,
    /// assuming `addr_bits`-bit physical addresses and 2 state bits
    /// (valid + dirty) per block.
    ///
    /// This is the quantity the paper trades for extra SRAM in the
    /// RAMpage configuration: a 4 MB direct-mapped cache with 128-byte
    /// blocks needs ≈128 KB of tags, so the equivalent RAMpage SRAM main
    /// memory is 4.125 MB.
    pub fn tag_store_bytes(&self, addr_bits: u32) -> u64 {
        let offset_bits = self.block.trailing_zeros();
        let index_bits = self.sets().trailing_zeros();
        let tag_bits = addr_bits.saturating_sub(offset_bits + index_bits) + 2;
        // Round each block's tag+state up to whole bits, then to bytes.
        (self.blocks() * tag_bits as u64).div_ceil(8)
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KiB, {}-byte blocks, {}-way",
            self.size / 1024,
            self.block,
            self.ways
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry() {
        // 16 KB direct-mapped, 32-byte blocks.
        let g = Geometry::new(16 * 1024, 32, 1).unwrap();
        assert_eq!(g.sets(), 512);
        assert_eq!(g.blocks(), 512);
    }

    #[test]
    fn paper_l2_geometries() {
        for block in [128u64, 256, 512, 1024, 2048, 4096] {
            let g = Geometry::new(4 << 20, block, 1).unwrap();
            assert_eq!(g.blocks(), (4 << 20) / block);
            let g2 = Geometry::new(4 << 20, block, 2).unwrap();
            assert_eq!(g2.sets(), (4 << 20) / block / 2);
        }
    }

    #[test]
    fn index_tag_roundtrip() {
        let g = Geometry::new(1 << 20, 64, 4).unwrap();
        for addr in [0u64, 0x40, 0xfff_fc0, 0x1234_5678, 0xdead_beef] {
            let a = PhysAddr(addr).align_down(64);
            let set = g.set_index(a);
            let tag = g.tag(a);
            assert_eq!(g.block_base(set, tag), a, "roundtrip for {a}");
            assert!(set < g.sets());
        }
    }

    #[test]
    fn distinct_blocks_same_set_have_distinct_tags() {
        let g = Geometry::new(64 * 1024, 32, 1).unwrap();
        let a = PhysAddr(0x0);
        let b = PhysAddr(64 * 1024); // same index, next tag
        assert_eq!(g.set_index(a), g.set_index(b));
        assert_ne!(g.tag(a), g.tag(b));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(
            Geometry::new(0, 32, 1).unwrap_err(),
            GeometryError::NotPowerOfTwo("cache size")
        );
        assert_eq!(
            Geometry::new(1024, 48, 1).unwrap_err(),
            GeometryError::NotPowerOfTwo("block size")
        );
        assert_eq!(
            Geometry::new(1024, 32, 3).unwrap_err(),
            GeometryError::NotPowerOfTwo("ways")
        );
        assert_eq!(
            Geometry::new(64, 32, 4).unwrap_err(),
            GeometryError::Inconsistent
        );
    }

    #[test]
    fn fully_associative_has_one_set() {
        let g = Geometry::fully_associative(2048, 32).unwrap();
        assert_eq!(g.sets(), 1);
        assert_eq!(g.ways(), 64);
        // All addresses map to set 0.
        assert_eq!(g.set_index(PhysAddr(0xabcdef00)), 0);
    }

    #[test]
    fn tag_store_for_paper_l2() {
        // 4 MB direct-mapped L2, 128-byte blocks: 32 K blocks, 7 offset
        // bits + 15 index bits leaves 10 tag bits + 2 state bits = 12 bits
        // per block = 48 KB exactly. (The paper's own sizing convention is
        // a rounder 4 bytes/block = 128 KB; rampage-core uses that
        // convention when granting the RAMpage SRAM its tag-equivalent
        // bonus.)
        let g = Geometry::new(4 << 20, 128, 1).unwrap();
        assert_eq!(g.tag_store_bytes(32), 48 * 1024);
    }

    #[test]
    fn display_is_informative() {
        let g = Geometry::new(4 << 20, 128, 2).unwrap();
        assert_eq!(g.to_string(), "4096 KiB, 128-byte blocks, 2-way");
    }
}
