//! Jouppi-style victim cache.

use crate::addr::PhysAddr;
use crate::cache::Eviction;

/// A small fully-associative buffer of recently evicted blocks.
///
/// §3.2 of the paper lists the victim cache (Jouppi 1990) among hardware
/// techniques that reduce conflict misses without slowing hits, and notes
/// that RAMpage can obtain the same effect in software via a standby page
/// list (implemented in `rampage-vm`). This hardware version backs the
/// ablation study comparing the two.
///
/// Blocks enter on eviction from the main cache; a hit removes the block
/// (it is swapped back into the main cache by the caller). FIFO
/// replacement, as in Jouppi's design.
#[derive(Debug, Clone)]
pub struct VictimCache {
    block_size: u64,
    capacity: usize,
    /// FIFO order, oldest first.
    entries: Vec<Eviction>,
    hits: u64,
    misses: u64,
}

impl VictimCache {
    /// Create a victim cache of `capacity` blocks of `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `block_size` is not a power of two.
    pub fn new(capacity: usize, block_size: u64) -> Self {
        assert!(capacity > 0, "victim cache needs at least one entry");
        assert!(block_size.is_power_of_two(), "block size");
        VictimCache {
            block_size,
            capacity,
            entries: Vec::with_capacity(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Insert a block evicted from the main cache; returns the block
    /// pushed out of the victim cache, if it overflowed.
    pub fn insert(&mut self, ev: Eviction) -> Option<Eviction> {
        let aligned = Eviction {
            addr: ev.addr.align_down(self.block_size),
            dirty: ev.dirty,
        };
        // Re-inserting an existing block just refreshes dirtiness.
        if let Some(e) = self.entries.iter_mut().find(|e| e.addr == aligned.addr) {
            e.dirty |= aligned.dirty;
            return None;
        }
        self.entries.push(aligned);
        if self.entries.len() > self.capacity {
            Some(self.entries.remove(0))
        } else {
            None
        }
    }

    /// Look up `addr`; on a hit the block is removed and returned for the
    /// caller to refill into the main cache.
    pub fn take(&mut self, addr: PhysAddr) -> Option<Eviction> {
        let base = addr.align_down(self.block_size);
        match self.entries.iter().position(|e| e.addr == base) {
            Some(i) => {
                self.hits += 1;
                Some(self.entries.remove(i))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Invalidate the buffered block containing `addr` (inclusion
    /// maintenance: when the next level evicts a block, any victim-cache
    /// copy must die with it). Returns the removed block.
    pub fn invalidate_block(&mut self, addr: PhysAddr) -> Option<Eviction> {
        let base = addr.align_down(self.block_size);
        let pos = self.entries.iter().position(|e| e.addr == base)?;
        Some(self.entries.remove(pos))
    }

    /// Invalidate every buffered block in `[base, base + len)`, passing
    /// each removed block to `on_evict`.
    pub fn invalidate_region(
        &mut self,
        base: PhysAddr,
        len: u64,
        mut on_evict: impl FnMut(Eviction),
    ) {
        let lo = base.align_down(self.block_size).0;
        let hi = base.0 + len;
        self.entries.retain(|e| {
            let inside = e.addr.0 >= lo && e.addr.0 < hi;
            if inside {
                on_evict(*e);
            }
            !inside
        });
    }

    /// Blocks currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no blocks are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) observed by [`take`](VictimCache::take).
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(addr: u64, dirty: bool) -> Eviction {
        Eviction {
            addr: PhysAddr(addr),
            dirty,
        }
    }

    #[test]
    fn insert_then_take_hits() {
        let mut v = VictimCache::new(4, 32);
        assert_eq!(v.insert(ev(0x100, true)), None);
        let got = v.take(PhysAddr(0x110)).unwrap(); // same block
        assert_eq!(got.addr, PhysAddr(0x100));
        assert!(got.dirty);
        assert!(v.is_empty());
        assert_eq!(v.hit_miss(), (1, 0));
    }

    #[test]
    fn overflow_evicts_oldest() {
        let mut v = VictimCache::new(2, 32);
        assert_eq!(v.insert(ev(0x00, false)), None);
        assert_eq!(v.insert(ev(0x20, false)), None);
        let out = v.insert(ev(0x40, false)).unwrap();
        assert_eq!(out.addr, PhysAddr(0x00), "FIFO discards oldest");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn miss_counts() {
        let mut v = VictimCache::new(2, 32);
        assert!(v.take(PhysAddr(0)).is_none());
        assert_eq!(v.hit_miss(), (0, 1));
    }

    #[test]
    fn invalidate_block_removes_silently() {
        let mut v = VictimCache::new(4, 32);
        v.insert(ev(0x40, true));
        let got = v.invalidate_block(PhysAddr(0x44)).unwrap();
        assert_eq!(got.addr, PhysAddr(0x40));
        assert!(got.dirty);
        assert!(v.invalidate_block(PhysAddr(0x40)).is_none());
        // Invalidation is not a lookup: hit/miss counters untouched.
        assert_eq!(v.hit_miss(), (0, 0));
    }

    #[test]
    fn invalidate_region_sweeps_range() {
        let mut v = VictimCache::new(8, 32);
        for i in 0..6u64 {
            v.insert(ev(i * 32, i % 2 == 0));
        }
        let mut out = Vec::new();
        v.invalidate_region(PhysAddr(32), 128, |e| out.push(e)); // blocks 1..5
        assert_eq!(out.len(), 4);
        assert_eq!(v.len(), 2, "blocks 0 and 5 survive");
        assert!(v.take(PhysAddr(0)).is_some());
        assert!(v.take(PhysAddr(5 * 32)).is_some());
    }

    #[test]
    fn reinsert_merges_dirtiness() {
        let mut v = VictimCache::new(2, 32);
        v.insert(ev(0x40, false));
        v.insert(ev(0x40, true));
        assert_eq!(v.len(), 1);
        assert!(v.take(PhysAddr(0x40)).unwrap().dirty);
    }
}
