//! Hit/miss accounting.

use std::fmt;
use std::ops::AddAssign;

/// Counters a cache accumulates as it is exercised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read (or fetch) accesses that hit.
    pub read_hits: u64,
    /// Read (or fetch) accesses that missed.
    pub read_misses: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed (write-allocate fills).
    pub write_misses: u64,
    /// Dirty evictions (write-backs produced).
    pub writebacks: u64,
    /// Blocks invalidated externally (inclusion or page replacement).
    pub invalidations: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss ratio in `[0, 1]`; 0 for an untouched cache.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses() as f64 / a as f64
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.read_hits += rhs.read_hits;
        self.read_misses += rhs.read_misses;
        self.write_hits += rhs.write_hits;
        self.write_misses += rhs.write_misses;
        self.writebacks += rhs.writebacks;
        self.invalidations += rhs.invalidations;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.3}%), {} writebacks",
            self.accesses(),
            self.misses(),
            100.0 * self.miss_ratio(),
            self.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_totals() {
        let s = CacheStats {
            read_hits: 90,
            read_misses: 10,
            write_hits: 45,
            write_misses: 5,
            writebacks: 3,
            invalidations: 1,
        };
        assert_eq!(s.accesses(), 150);
        assert_eq!(s.hits(), 135);
        assert_eq!(s.misses(), 15);
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_ratio() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = CacheStats {
            read_hits: 1,
            ..Default::default()
        };
        a += CacheStats {
            read_hits: 2,
            writebacks: 4,
            ..Default::default()
        };
        assert_eq!(a.read_hits, 3);
        assert_eq!(a.writebacks, 4);
    }
}
