//! Write-buffer model.

/// The paper's "perfect write buffering" (§4.3): write hits take zero
/// effective time because a buffer absorbs them.
///
/// The simulator's fast path only needs the *perfect* behaviour, but the
/// buffer still counts traffic and, when configured with a finite depth,
/// reports how often a real buffer of that depth would have stalled —
/// used by the ablation experiments to check the perfect-buffer assumption.
///
/// Drain modelling is deliberately simple: each elapsed "drain opportunity"
/// (reported by the caller via [`drain`](WriteBuffer::drain)) retires one
/// buffered write.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    depth: Option<usize>,
    occupied: usize,
    pushes: u64,
    would_stall: u64,
    max_occupancy: usize,
}

impl WriteBuffer {
    /// A perfect (infinite) write buffer — the paper's model.
    pub fn perfect() -> Self {
        WriteBuffer {
            depth: None,
            occupied: 0,
            pushes: 0,
            would_stall: 0,
            max_occupancy: 0,
        }
    }

    /// A finite buffer of `depth` entries, for ablations.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_depth(depth: usize) -> Self {
        assert!(depth > 0, "zero-depth buffer cannot accept writes");
        WriteBuffer {
            depth: Some(depth),
            ..WriteBuffer::perfect()
        }
    }

    /// Record a buffered write. Returns `true` if a buffer of the
    /// configured depth would have had space (always `true` for perfect).
    pub fn push(&mut self) -> bool {
        self.pushes += 1;
        match self.depth {
            None => {
                self.occupied += 1;
                self.max_occupancy = self.max_occupancy.max(self.occupied);
                true
            }
            Some(d) if self.occupied < d => {
                self.occupied += 1;
                self.max_occupancy = self.max_occupancy.max(self.occupied);
                true
            }
            Some(_) => {
                self.would_stall += 1;
                false
            }
        }
    }

    /// Retire up to `n` buffered writes (idle cycles at the next level).
    pub fn drain(&mut self, n: usize) {
        self.occupied = self.occupied.saturating_sub(n);
    }

    /// Writes currently buffered.
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// Peak occupancy seen.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Total writes pushed.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// How many pushes found a full finite buffer (0 for perfect).
    pub fn would_stall(&self) -> u64 {
        self.would_stall
    }
}

impl Default for WriteBuffer {
    fn default() -> Self {
        WriteBuffer::perfect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_buffer_never_stalls() {
        let mut b = WriteBuffer::perfect();
        for _ in 0..10_000 {
            assert!(b.push());
        }
        assert_eq!(b.would_stall(), 0);
        assert_eq!(b.pushes(), 10_000);
        assert_eq!(b.max_occupancy(), 10_000);
    }

    #[test]
    fn finite_buffer_reports_stalls() {
        let mut b = WriteBuffer::with_depth(2);
        assert!(b.push());
        assert!(b.push());
        assert!(!b.push(), "third write finds buffer full");
        assert_eq!(b.would_stall(), 1);
        b.drain(1);
        assert!(b.push());
    }

    #[test]
    fn drain_clamps_at_zero() {
        let mut b = WriteBuffer::with_depth(4);
        b.push();
        b.drain(10);
        assert_eq!(b.occupancy(), 0);
    }
}
