//! Cache structures for the RAMpage simulator.
//!
//! This crate provides the hardware-cache substrate of the paper's two
//! hierarchies:
//!
//! * [`Cache`] — a set-associative write-back cache with pluggable
//!   [`ReplacementPolicy`] (direct-mapped is 1-way, the paper's baseline L2;
//!   2-way with random replacement is the paper's "more realistic" L2;
//!   the 16 KB L1 I/D caches are direct-mapped with 32-byte blocks);
//! * [`Geometry`] — validated size/block/way arithmetic (index and tag
//!   extraction, tag storage overhead — used to size the RAMpage SRAM
//!   main memory 128 KB larger than the 4 MB L2 it replaces);
//! * [`VictimCache`] — the small fully-associative victim buffer of
//!   Jouppi (1990), discussed in §3.2 of the paper and used here for
//!   ablation studies;
//! * [`WriteBuffer`] — the paper's "perfect write buffering" model
//!   (zero effective write-hit time) with depth accounting for ablations.
//!
//! Caches here are *behavioural* models: they track tags, validity and
//! dirtiness and report hits, misses and evictions. Timing is applied by
//! the simulator in `rampage-core`, which charges the paper's penalties
//! around these outcomes.
//!
//! ```
//! use rampage_cache::{Cache, Geometry, PhysAddr, ReplacementPolicy};
//!
//! // The paper's baseline L2: 4 MB direct-mapped, 128-byte blocks.
//! let geo = Geometry::new(4 << 20, 128, 1).unwrap();
//! let mut l2 = Cache::new(geo, ReplacementPolicy::Lru);
//! let r = l2.access(PhysAddr(0x1000), false);
//! assert!(!r.hit);
//! assert!(l2.access(PhysAddr(0x1000), false).hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cache;
mod classify;
mod geometry;
mod policy;
mod stats;
mod victim;
mod writebuf;

pub use addr::PhysAddr;
pub use cache::{AccessResult, Cache, Eviction};
pub use classify::{MissClass, MissClassifier, MissProfile, ShadowTracker};
pub use geometry::{Geometry, GeometryError};
pub use policy::ReplacementPolicy;
pub use stats::CacheStats;
pub use victim::VictimCache;
pub use writebuf::WriteBuffer;
