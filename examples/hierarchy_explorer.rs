//! Hierarchy explorer: sweep the SRAM page size / L2 block size and
//! watch where simulated time goes (the Figure 2/3 view, interactively
//! sized).
//!
//! ```text
//! cargo run --release --example hierarchy_explorer [--mhz 1000] [--refs 150000]
//! ```

use rampage::prelude::*;
use rampage_core::TableBuilder;

fn parse_flag(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let mhz = parse_flag("--mhz", 1000) as u32;
    let refs = parse_flag("--refs", 150_000);
    let issue = IssueRate::from_mhz(mhz);
    println!("Level breakdown at {issue}, ~{refs} refs x 6 benchmarks\n");

    for (title, make) in [
        (
            "direct-mapped L2",
            SystemConfig::baseline as fn(IssueRate, u64) -> SystemConfig,
        ),
        (
            "RAMpage",
            SystemConfig::rampage as fn(IssueRate, u64) -> SystemConfig,
        ),
    ] {
        let mut t = TableBuilder::new(vec![
            "size".into(),
            "time".into(),
            "L1i %".into(),
            "L1d %".into(),
            "L2/SRAM %".into(),
            "DRAM %".into(),
            "TLB miss %".into(),
            "overhead %".into(),
        ]);
        for size in [128u64, 256, 512, 1024, 2048, 4096] {
            let cfg = make(issue, size);
            let out = Engine::for_suite(&cfg, 6, refs, 42).run();
            let m = out.metrics;
            let f = m.time.fractions();
            t.row(vec![
                size.to_string(),
                format!("{:.3} ms", 1000.0 * out.seconds),
                format!("{:.1}", 100.0 * f.l1i),
                format!("{:.1}", 100.0 * f.l1d),
                format!("{:.1}", 100.0 * f.l2_sram),
                format!("{:.1}", 100.0 * f.dram),
                format!("{:.2}", 100.0 * m.counts.tlb.miss_ratio()),
                format!("{:.1}", 100.0 * m.counts.handler_overhead_ratio()),
            ]);
        }
        println!("[{title}]\n{}", t.render());
    }

    println!(
        "The RAMpage panel shows the paper's §5.3 trade: small pages drown\n\
         in TLB-refill software, large pages shift time from software into\n\
         page transfers; the sweet spot sits at 1-2 KB."
    );
}
