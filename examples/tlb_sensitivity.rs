//! TLB sensitivity (the paper's §6.3 conjecture): "a larger TLB would
//! likely make RAMpage more competitive, with smaller SRAM page sizes."
//!
//! Sweeps page size × TLB configuration and prints run time and handler
//! overhead, testing that conjecture directly.
//!
//! ```text
//! cargo run --release --example tlb_sensitivity
//! ```

use rampage::prelude::*;
use rampage_core::{TableBuilder, TlbConfig};

fn main() {
    let issue = IssueRate::GHZ1;
    println!("RAMpage at {issue}: 64-entry FA TLB vs 1K-entry 2-way TLB\n");

    let mut t = TableBuilder::new(vec![
        "page".into(),
        "64-entry time".into(),
        "64-entry ovh %".into(),
        "1K-entry time".into(),
        "1K-entry ovh %".into(),
        "speedup".into(),
    ]);
    for page in [128u64, 256, 512, 1024, 2048, 4096] {
        let small_cfg = SystemConfig::rampage(issue, page);
        let mut big_cfg = small_cfg;
        big_cfg.tlb = TlbConfig::large_2way();

        let small = Engine::for_suite(&small_cfg, 6, 150_000, 42).run();
        let big = Engine::for_suite(&big_cfg, 6, 150_000, 42).run();
        t.row(vec![
            format!("{page} B"),
            format!("{:.3} ms", 1000.0 * small.seconds),
            format!(
                "{:.1}",
                100.0 * small.metrics.counts.handler_overhead_ratio()
            ),
            format!("{:.3} ms", 1000.0 * big.seconds),
            format!("{:.1}", 100.0 * big.metrics.counts.handler_overhead_ratio()),
            format!("{:.2}x", small.seconds / big.seconds),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The big TLB's reach (1K entries x page size) erases the refill\n\
         overhead that cripples small pages, exactly as §6.3 predicted —\n\
         small pages become viable, and with them finer-grained transfers."
    );
}
