//! Context-switch-on-miss study (the paper's §4.6 / Table 4 idea):
//! when is a page fault to DRAM long enough to be worth a context
//! switch?
//!
//! Runs RAMpage with and without switch-on-miss across the issue-rate
//! sweep and prints the speedup, plus the raw DRAM-transfer-vs-switch
//! cost arithmetic that §3.5 uses to motivate the idea.
//!
//! ```text
//! cargo run --release --example context_switch_study
//! ```

use rampage::prelude::*;
use rampage_core::TableBuilder;
use rampage_dram::{DirectRambus, MemoryDevice};

fn main() {
    // First the analytic view: a context switch costs ~400 references
    // (≈400+ cycles); a page transfer costs 50 ns + 0.625 ns/byte.
    println!("When does a switch fit inside a page transfer?\n");
    let rambus = DirectRambus::non_pipelined();
    let mut t = TableBuilder::new(vec![
        "page".into(),
        "transfer".into(),
        "cycles @200MHz".into(),
        "cycles @1GHz".into(),
        "cycles @4GHz".into(),
    ]);
    for page in [128u64, 512, 1024, 4096] {
        let tt = rambus.transfer_time(page);
        t.row(vec![
            format!("{page} B"),
            tt.to_string(),
            tt.cycles_ceil(IssueRate::MHZ200.cycle()).to_string(),
            tt.cycles_ceil(IssueRate::GHZ1.cycle()).to_string(),
            tt.cycles_ceil(IssueRate::GHZ4.cycle()).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "A ~400-reference switch only pays off once the transfer is much\n\
         longer than the switch itself — i.e. for larger pages and faster\n\
         CPUs. Now the simulated verdict:\n"
    );

    let mut t = TableBuilder::new(vec![
        "issue rate".into(),
        "page".into(),
        "no switch".into(),
        "switch-on-miss".into(),
        "speedup".into(),
        "switches on miss".into(),
        "idle %".into(),
    ]);
    for rate in IssueRate::PAPER_SWEEP {
        for page in [1024u64, 4096] {
            let base = Engine::for_suite(&SystemConfig::rampage(rate, page), 8, 120_000, 42).run();
            let mut cfg = SystemConfig::rampage_switching(rate, page);
            cfg.switch_trace = true;
            let sw = Engine::for_suite(&cfg, 8, 120_000, 42).run();
            t.row(vec![
                rate.to_string(),
                format!("{page} B"),
                format!("{:.3} ms", 1000.0 * base.seconds),
                format!("{:.3} ms", 1000.0 * sw.seconds),
                format!("{:.3}x", base.seconds / sw.seconds),
                sw.metrics.counts.switches_on_miss.to_string(),
                format!("{:.1}", 100.0 * sw.metrics.time.fractions().idle),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "As the CPU-DRAM gap grows, hiding page transfers behind other\n\
         processes buys more — the paper's Table 4 found up to 16% at 4 GHz."
    );
}
