//! Miss anatomy: classify the misses of the paper's L2 organizations
//! with the 3C taxonomy (compulsory / capacity / conflict).
//!
//! Conflict misses are exactly what RAMpage's full associativity (and a
//! 2-way L2's partial associativity) removes; this example quantifies
//! that mechanism directly on the synthetic suite, outside the timing
//! simulator.
//!
//! ```text
//! cargo run --release --example miss_anatomy [--refs 200000]
//! ```

use rampage::cache::{Geometry, MissClassifier, PhysAddr, ReplacementPolicy};
use rampage::prelude::*;
use rampage::trace::profiles;
use rampage_core::TableBuilder;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let refs: u64 = args
        .iter()
        .position(|a| a == "--refs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);

    println!(
        "3C classification of 4 MB L2 misses, {refs} refs x 8 interleaved benchmarks\n\
         (addresses used physically: ASID folded into high bits)\n"
    );

    let mut t = TableBuilder::new(vec![
        "organization".into(),
        "block".into(),
        "misses".into(),
        "compulsory".into(),
        "capacity".into(),
        "conflict".into(),
        "conflict share".into(),
    ]);

    for (name, ways) in [
        ("direct-mapped", 1u32),
        ("2-way", 2),
        ("16-way (~full)", 16),
    ] {
        for block in [128u64, 1024] {
            let geo = Geometry::new(4 << 20, block, ways).unwrap();
            let mut mc = MissClassifier::new(geo, ReplacementPolicy::Lru);

            // Drive the interleaved suite through the classifier. The
            // ASID lands in the high address bits so processes do not
            // alias (a crude but adequate stand-in for translation).
            let sources = profiles::small_suite(8, 5000, 42);
            let mut mix = Interleaver::new(sources, 50_000);
            let mut n = 0u64;
            while n < refs {
                match mix.next_event() {
                    rampage::trace::ScheduleEvent::Record { pid, record } => {
                        let pa = PhysAddr(((pid.0 as u64) << 40) | record.addr.0);
                        mc.access(pa, record.kind.is_write());
                        n += 1;
                    }
                    rampage::trace::ScheduleEvent::Switch { .. } => {}
                    rampage::trace::ScheduleEvent::Finished => break,
                }
            }

            let p = mc.profile();
            t.row(vec![
                name.into(),
                block.to_string(),
                p.misses().to_string(),
                p.compulsory.to_string(),
                p.capacity.to_string(),
                p.conflict.to_string(),
                format!("{:.1}%", 100.0 * p.conflict_share()),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Full associativity (approximated by 16-way) zeroes the conflict\n\
         column — the misses RAMpage's paged SRAM never takes. What remains\n\
         (compulsory + capacity) is the floor both hierarchies share."
    );
}
