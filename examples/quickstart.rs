//! Quickstart: simulate the paper's three systems on a small workload
//! and print a comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rampage::prelude::*;
use rampage_core::TableBuilder;

fn main() {
    // The three contenders of the paper, at a 1 GHz issue rate with
    // 1 KB L2 blocks / SRAM pages.
    let configs = [
        (
            "baseline DM L2",
            SystemConfig::baseline(IssueRate::GHZ1, 1024),
        ),
        ("2-way L2", SystemConfig::two_way(IssueRate::GHZ1, 1024)),
        ("RAMpage", SystemConfig::rampage(IssueRate::GHZ1, 1024)),
        (
            "RAMpage + switch-on-miss",
            SystemConfig::rampage_switching(IssueRate::GHZ1, 1024),
        ),
    ];

    let mut table = TableBuilder::new(vec![
        "system".into(),
        "sim time".into(),
        "cycles/ref".into(),
        "DRAM %".into(),
        "handler ovh %".into(),
    ]);

    for (name, cfg) in configs {
        // Six Table 2 benchmarks, ~150 K references each.
        let mut engine = Engine::for_suite(&cfg, 6, 150_000, 42);
        let out = engine.run();
        let m = out.metrics;
        table.row(vec![
            name.into(),
            format!("{:.3} ms", 1000.0 * out.seconds),
            format!("{:.2}", m.cycles_per_ref()),
            format!("{:.1}", 100.0 * m.time.fractions().dram),
            format!("{:.1}", 100.0 * m.counts.handler_overhead_ratio()),
        ]);
        println!("{name}: {}", out.system_label);
    }

    println!("\n{}", table.render());
    println!(
        "Reading the table: RAMpage trades hardware tags for software\n\
         handlers — more handler overhead, but full associativity means\n\
         fewer DRAM events; switch-on-miss then hides the DRAM time that\n\
         remains behind other processes' execution."
    );
}
