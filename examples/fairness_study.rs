//! Fairness study: how the multiprogrammed suite's individual programs
//! fare under each hierarchy, using the engine's per-process accounting.
//!
//! The paper evaluates aggregate run time; this example asks which
//! programs pay for each organization's weaknesses — pointer-heavy codes
//! under large transfer units, streaming codes under small ones.
//!
//! ```text
//! cargo run --release --example fairness_study
//! ```

use rampage::prelude::*;
use rampage_core::TableBuilder;

fn main() {
    let issue = IssueRate::GHZ1;
    let configs = [
        ("DM L2 / 256 B", SystemConfig::baseline(issue, 256)),
        ("RAMpage / 2 KB", SystemConfig::rampage(issue, 2048)),
    ];

    // Run both systems over the same 10-benchmark workload.
    let outcomes: Vec<RunOutcome> = configs
        .iter()
        .map(|(_, cfg)| Engine::for_suite(cfg, 10, 120_000, 42).run())
        .collect();

    let mut t = TableBuilder::new(vec![
        "program".into(),
        "refs".into(),
        "DM stall c/ref".into(),
        "RAMpage stall c/ref".into(),
        "RAMpage wins?".into(),
    ]);
    for (i, p) in outcomes[0].per_process.iter().enumerate() {
        let dm = p;
        let rp = &outcomes[1].per_process[i];
        assert_eq!(dm.name, rp.name, "same workload order");
        let dm_cpr = dm.stall_cycles as f64 / dm.refs.max(1) as f64;
        let rp_cpr = rp.stall_cycles as f64 / rp.refs.max(1) as f64;
        t.row(vec![
            dm.name.clone(),
            dm.refs.to_string(),
            format!("{dm_cpr:.3}"),
            format!("{rp_cpr:.3}"),
            if rp_cpr < dm_cpr { "yes" } else { "no" }.into(),
        ]);
    }
    println!(
        "Per-program stall cycles per reference at {issue} ({} vs {})\n",
        configs[0].0, configs[1].0
    );
    println!("{}", t.render());
    println!(
        "Programs with strong spatial runs benefit from RAMpage's page-\n\
         sized transfers; branchy pointer-chasers with scattered touches\n\
         pay for them. The aggregate (the paper's tables) hides this split."
    );
}
