//! Workload anatomy: inspect the synthetic Table 2 suite — reference
//! mixes, footprints, and how they compare to the paper's numbers.
//!
//! ```text
//! cargo run --release --example workload_anatomy [--refs 100000]
//! ```

use rampage::trace::{profiles, TraceStats};
use rampage_core::TableBuilder;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let refs: u64 = args
        .iter()
        .position(|a| a == "--refs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);

    println!("Synthetic Table 2 suite, {refs} references sampled per program\n");
    let mut t = TableBuilder::new(vec![
        "program".into(),
        "ifetch % (Table 2)".into(),
        "ifetch % (measured)".into(),
        "write %".into(),
        "4K pages touched".into(),
        "32B blocks touched".into(),
    ]);
    for p in &profiles::TABLE2 {
        let mut src = p.source(1, 7); // full-volume source, sampled below
        let stats = TraceStats::collect(&mut src, refs, 32, 4096);
        let mix = stats.mix();
        t.row(vec![
            p.name.to_string(),
            format!("{:.1}", 100.0 * p.ifetch_frac()),
            format!("{:.1}", 100.0 * mix.ifetch),
            format!("{:.1}", 100.0 * mix.write),
            stats.unique_pages.to_string(),
            stats.unique_blocks.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The measured instruction-fetch fractions track Table 2's numbers;\n\
         footprints span TLB reach (64 x 4 KB = 256 KB) and stress the 4 MB\n\
         SRAM level once all 18 programs are interleaved."
    );
}
